#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/stopwatch.h"

namespace crowdrl {
namespace {

TEST(MutexTest, ProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;  // deliberately non-atomic: the mutex is the protection
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lk(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lk(mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhenHeldAndSucceedsWhenFree) {
  Mutex mu;
  mu.Lock();
  std::thread other([&] { EXPECT_FALSE(mu.TryLock()); });
  other.join();
  mu.Unlock();
  std::thread third([&] {
    ASSERT_TRUE(mu.TryLock());
    mu.Unlock();
  });
  third.join();
}

TEST(MutexTest, AssertHeldIsARuntimeNoOp) {
  // The value of AssertHeld is entirely compile-time (it feeds the clang
  // analysis through opaque std::function boundaries); at runtime it must
  // cost and check nothing, held or not.
  Mutex mu;
  mu.AssertHeld();
  MutexLock lk(mu);
  mu.AssertHeld();
}

TEST(MutexLockTest, UnlockAndRelockHandOverHand) {
  Mutex mu;
  int value = 0;
  MutexLock lk(mu);
  ++value;
  lk.Unlock();
  // Another thread can take the mutex while we are unlocked.
  std::thread other([&] {
    MutexLock inner(mu);
    ++value;
  });
  other.join();
  lk.Lock();
  ++value;
  EXPECT_EQ(value, 3);
}

TEST(CondVarTest, WaitReleasesMutexAndWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lk(mu);
    while (!ready) cv.Wait(mu, lk);
    EXPECT_TRUE(ready);
  });
  // If Wait failed to release the mutex, this lock would deadlock.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  {
    MutexLock lk(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(CondVarTest, WaitForReportsTimeoutAsFalse) {
  Mutex mu;
  CondVar cv;
  MutexLock lk(mu);
  EXPECT_FALSE(cv.WaitFor(mu, lk, std::chrono::microseconds(1000)));
}

TEST(CondVarTest, WaitUntilPastDeadlineReturnsImmediately) {
  Mutex mu;
  CondVar cv;
  MutexLock lk(mu);
  const Stopwatch wait;
  EXPECT_FALSE(cv.WaitUntil(mu, lk, std::chrono::steady_clock::now()));
  EXPECT_LT(wait.ElapsedSeconds(), 1.0);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lk(mu);
      while (!go) cv.Wait(mu, lk);
      woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  {
    MutexLock lk(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(SharedMutexTest, AdmitsConcurrentReaders) {
  SharedMutex mu;
  Mutex sync_mu;
  CondVar sync_cv;
  int readers_inside = 0;
  bool both_seen = false;
  auto reader = [&] {
    ReaderMutexLock lk(mu);
    {
      MutexLock sync(sync_mu);
      ++readers_inside;
      if (readers_inside >= 2) both_seen = true;
      sync_cv.NotifyAll();
      // Hold the shared lock until a second reader proves concurrency
      // (bounded so a broken SharedMutex fails rather than hangs).
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (!both_seen && sync_cv.WaitUntil(sync_mu, sync, deadline)) {
      }
    }
  };
  std::thread a(reader), b(reader);
  a.join();
  b.join();
  EXPECT_TRUE(both_seen);
}

TEST(SharedMutexTest, WriterExcludesReadersAndWriters) {
  SharedMutex mu;
  int value = 0;
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kRounds = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        WriterMutexLock lk(mu);
        ++value;  // non-atomic: exclusivity is the protection
      }
    });
  }
  std::atomic<bool> tore{false};
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        ReaderMutexLock lk(mu);
        if (value < 0 || value > kWriters * kRounds) tore = true;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(tore.load());
  ReaderMutexLock lk(mu);
  EXPECT_EQ(value, kWriters * kRounds);
}

}  // namespace
}  // namespace crowdrl
