#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

namespace crowdrl {
namespace {

TEST(ThreadPoolTest, RunsAllIterationsExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, HandlesZeroAndOne) {
  ThreadPool pool(2);
  int count = 0;
  pool.ParallelFor(0, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.ParallelFor(1, [&](size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ActuallyUsesMultipleThreads) {
  if (std::thread::hardware_concurrency() <= 1) {
    GTEST_SKIP() << "single-CPU host: ParallelFor deliberately runs inline "
                    "(dispatch would only add wakeup/contention overhead)";
  }
  ThreadPool pool(4);
  std::mutex mu;
  std::condition_variable cv;
  std::set<std::thread::id> ids;
  bool waited = false;
  pool.ParallelFor(64, [&](size_t) {
    std::unique_lock<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
    if (ids.size() >= 2) {
      cv.notify_all();
    } else if (!waited) {
      // Hold the first thread until a second one shows up; otherwise on a
      // loaded single-core machine the caller can drain every iteration
      // before any worker wakes. The timeout keeps a broken pool from
      // hanging the suite.
      waited = true;
      cv.wait_for(lock, std::chrono::seconds(5),
                  [&] { return ids.size() >= 2; });
    }
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPoolTest, SequentialCallsWork) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(100, [&](size_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 20 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // Regression: a ParallelFor issued from inside a pool task used to abort
  // (or deadlock) on the pool's single-job slot. It must now run inline on
  // the calling thread and still cover every iteration exactly once.
  ThreadPool pool(4);
  const size_t outer = 16, inner = 32;
  std::vector<std::atomic<int>> hits(outer * inner);
  std::atomic<int> inline_nested{0};
  pool.ParallelFor(outer, [&](size_t o) {
    EXPECT_TRUE(pool.InsideThisPool());
    pool.ParallelFor(inner, [&](size_t i) {
      hits[o * inner + i].fetch_add(1);
    });
    inline_nested.fetch_add(1);
  });
  EXPECT_EQ(inline_nested.load(), static_cast<int>(outer));
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_FALSE(pool.InsideThisPool());
}

TEST(ThreadPoolTest, DeeplyNestedParallelForTerminates) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) {
      pool.ParallelFor(4, [&](size_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentSubmittersQueueInsteadOfAborting) {
  // Independent threads racing to submit jobs serialize on the pool.
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        pool.ParallelFor(50, [&](size_t i) { total.fetch_add(i); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), 4 * 10 * (49 * 50 / 2));
}

TEST(ThreadPoolTest, NestedAcrossDistinctPoolsStillParallel) {
  // Nesting across *different* pools is not the deadlock case and must
  // keep working (e.g. an outer runner pool with inner Global() updates).
  ThreadPool outer(2), inner_pool(2);
  std::atomic<int> count{0};
  outer.ParallelFor(8, [&](size_t) {
    EXPECT_TRUE(outer.InsideThisPool());
    EXPECT_FALSE(inner_pool.InsideThisPool());
    inner_pool.ParallelFor(8, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  ThreadPool::Global().ParallelFor(10, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
  EXPECT_GT(ThreadPool::Global().num_threads(), 0u);
}

TEST(ThreadPoolTest, ResultsMatchSerialComputation) {
  ThreadPool pool(8);
  std::vector<double> out(500);
  pool.ParallelFor(out.size(), [&](size_t i) {
    out[i] = static_cast<double>(i) * i;
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<double>(i) * i);
  }
}

}  // namespace
}  // namespace crowdrl
