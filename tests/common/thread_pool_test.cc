#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

namespace crowdrl {
namespace {

TEST(ThreadPoolTest, RunsAllIterationsExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, HandlesZeroAndOne) {
  ThreadPool pool(2);
  int count = 0;
  pool.ParallelFor(0, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.ParallelFor(1, [&](size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ActuallyUsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::condition_variable cv;
  std::set<std::thread::id> ids;
  bool waited = false;
  pool.ParallelFor(64, [&](size_t) {
    std::unique_lock<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
    if (ids.size() >= 2) {
      cv.notify_all();
    } else if (!waited) {
      // Hold the first thread until a second one shows up; otherwise on a
      // loaded single-core machine the caller can drain every iteration
      // before any worker wakes. The timeout keeps a broken pool from
      // hanging the suite.
      waited = true;
      cv.wait_for(lock, std::chrono::seconds(5),
                  [&] { return ids.size() >= 2; });
    }
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPoolTest, SequentialCallsWork) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(100, [&](size_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 20 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  ThreadPool::Global().ParallelFor(10, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
  EXPECT_GT(ThreadPool::Global().num_threads(), 0u);
}

TEST(ThreadPoolTest, ResultsMatchSerialComputation) {
  ThreadPool pool(8);
  std::vector<double> out(500);
  pool.ParallelFor(out.size(), [&](size_t i) {
    out[i] = static_cast<double>(i) * i;
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<double>(i) * i);
  }
}

}  // namespace
}  // namespace crowdrl
