#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/stopwatch.h"

namespace crowdrl {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CapacityBlocksProducerUntilConsumed) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(3));  // must block until a Pop frees a slot
    third_pushed = true;
  });
  // The producer cannot complete while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEmpty) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.Push(7));
  q.Close();
  EXPECT_FALSE(q.Push(8));  // rejected after close
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(q.Pop().has_value());  // drained
}

TEST(BoundedQueueTest, CloseReleasesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::thread consumer([&] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(BoundedQueueTest, PopBatchCoalescesUpToMax) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 3, /*coalesce_us=*/0), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.PopBatch(&out, 8, /*coalesce_us=*/0), 2u);
  EXPECT_EQ(out.size(), 5u);
}

TEST(BoundedQueueTest, PopBatchWaitsWithinWindowForStragglers) {
  BoundedQueue<int> q(16);
  ASSERT_TRUE(q.Push(1));
  std::thread straggler([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(q.Push(2));
  });
  std::vector<int> out;
  // Generous window: the straggler lands inside it and joins the batch.
  const size_t n = q.PopBatch(&out, 4, /*coalesce_us=*/500000);
  straggler.join();
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(BoundedQueueTest, PopBatchReturnsZeroWhenClosedAndDrained) {
  BoundedQueue<int> q(4);
  q.Close();
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 4, 1000), 0u);
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersConserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(16);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++popped;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ---- TryPushFor: the admission-control push ----

using PushResult = BoundedQueue<int>::PushResult;

TEST(BoundedQueueTest, TryPushForEnqueuesWhenSpaceIsFree) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.TryPushFor(1, /*budget_us=*/0), PushResult::kOk);
  EXPECT_EQ(q.TryPushFor(2, /*budget_us=*/0), PushResult::kOk);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, TryPushForTimesOutOnFullQueue) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(7));
  // Zero budget: a single full check, no wait.
  EXPECT_EQ(q.TryPushFor(8, /*budget_us=*/0), PushResult::kTimeout);
  // Small budget with no consumer: the deadline elapses.
  EXPECT_EQ(q.TryPushFor(8, /*budget_us=*/2000), PushResult::kTimeout);
  EXPECT_EQ(q.size(), 1u);  // the timed-out items were dropped
  EXPECT_EQ(*q.Pop(), 7);
}

TEST(BoundedQueueTest, TryPushForSucceedsWhenConsumerFreesSpaceInBudget) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(7));
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(*q.Pop(), 7);
  });
  // Generous budget: the push must latch on as soon as the pop frees a
  // slot, well before the deadline.
  EXPECT_EQ(q.TryPushFor(8, /*budget_us=*/2000000), PushResult::kOk);
  consumer.join();
  EXPECT_EQ(*q.Pop(), 8);
}

TEST(BoundedQueueTest, TryPushForOnClosedQueueReportsClosed) {
  BoundedQueue<int> q(4);
  q.Close();
  EXPECT_EQ(q.TryPushFor(1, /*budget_us=*/0), PushResult::kClosed);
  EXPECT_EQ(q.TryPushFor(1, /*budget_us=*/1000), PushResult::kClosed);
}

TEST(BoundedQueueTest, CloseWakesBlockedTryPushForWithClosed) {
  // The close/TryPushFor race: a producer parked mid-budget on a full
  // queue must be released by Close with kClosed (not left to ride out
  // its budget, and never reported as a mere timeout after shutdown).
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] {
    const Stopwatch wait;
    EXPECT_EQ(q.TryPushFor(2, /*budget_us=*/30000000),  // 30 s budget
              PushResult::kClosed);
    EXPECT_LT(wait.ElapsedSeconds(), 10.0);  // released by Close, not budget
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
}

TEST(BoundedQueueTest, TryPopIsNonBlocking) {
  BoundedQueue<int> q(4);
  EXPECT_FALSE(q.TryPop().has_value());  // empty: immediate nullopt
  ASSERT_TRUE(q.Push(5));
  ASSERT_TRUE(q.Push(6));
  EXPECT_EQ(*q.TryPop(), 5);
  EXPECT_EQ(*q.TryPop(), 6);
  EXPECT_FALSE(q.TryPop().has_value());
  q.Close();
  EXPECT_FALSE(q.TryPop().has_value());  // closed and drained
}

TEST(BoundedQueueTest, PopForTimesOutThenDeliversWithinBudget) {
  BoundedQueue<int> q(4);
  // No producer: the budget elapses empty-handed.
  EXPECT_FALSE(q.PopFor(/*budget_us=*/2000).has_value());
  EXPECT_FALSE(q.closed());  // timeout, not shutdown
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(q.Push(9));
  });
  // Generous budget: the pop must latch on as soon as the item lands.
  auto v = q.PopFor(/*budget_us=*/2000000);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
  producer.join();
}

TEST(BoundedQueueTest, KeepVariantTryPushForRetainsItemOnFailure) {
  // The pooled-resource contract: a timed-out (or closed-raced) push via
  // the pointer overload must leave the item with the caller instead of
  // destroying it — the replay pipeline's batch-shell pool depends on it.
  BoundedQueue<std::unique_ptr<int>> q(1);
  ASSERT_TRUE(q.Push(std::make_unique<int>(1)));
  auto item = std::make_unique<int>(2);
  EXPECT_EQ(q.TryPushFor(&item, /*budget_us=*/0),
            BoundedQueue<std::unique_ptr<int>>::PushResult::kTimeout);
  ASSERT_TRUE(item != nullptr);  // retained, not dropped
  EXPECT_EQ(*item, 2);
  ASSERT_TRUE(q.Pop().has_value());
  EXPECT_EQ(q.TryPushFor(&item, /*budget_us=*/0),
            BoundedQueue<std::unique_ptr<int>>::PushResult::kOk);
  EXPECT_TRUE(item == nullptr);  // consumed on success
  q.Close();
  auto late = std::make_unique<int>(3);
  EXPECT_EQ(q.TryPushFor(&late, /*budget_us=*/0),
            BoundedQueue<std::unique_ptr<int>>::PushResult::kClosed);
  ASSERT_TRUE(late != nullptr);  // caller still owns it after shutdown
}

TEST(BoundedQueueTest, ConcurrentTryPushForAndCloseNeverLosesAccounting) {
  // Hammer the race from many sides: every TryPushFor outcome must be
  // kOk, kTimeout or kClosed, and exactly the kOk items may be drained.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> q(2);
  std::atomic<int> ok{0}, timeout{0}, closed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        switch (q.TryPushFor(i, /*budget_us=*/50)) {
          case PushResult::kOk: ++ok; break;
          case PushResult::kTimeout: ++timeout; break;
          case PushResult::kClosed: ++closed; break;
        }
      }
    });
  }
  std::atomic<int> drained{0};
  std::thread consumer([&] {
    while (q.Pop()) ++drained;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.Close();
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(ok + timeout + closed, kProducers * kPerProducer);
  EXPECT_EQ(drained.load(), ok.load());
}

}  // namespace
}  // namespace crowdrl
