#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace crowdrl {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CapacityBlocksProducerUntilConsumed) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(3));  // must block until a Pop frees a slot
    third_pushed = true;
  });
  // The producer cannot complete while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEmpty) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.Push(7));
  q.Close();
  EXPECT_FALSE(q.Push(8));  // rejected after close
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(q.Pop().has_value());  // drained
}

TEST(BoundedQueueTest, CloseReleasesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::thread consumer([&] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(BoundedQueueTest, PopBatchCoalescesUpToMax) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 3, /*coalesce_us=*/0), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.PopBatch(&out, 8, /*coalesce_us=*/0), 2u);
  EXPECT_EQ(out.size(), 5u);
}

TEST(BoundedQueueTest, PopBatchWaitsWithinWindowForStragglers) {
  BoundedQueue<int> q(16);
  ASSERT_TRUE(q.Push(1));
  std::thread straggler([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(q.Push(2));
  });
  std::vector<int> out;
  // Generous window: the straggler lands inside it and joins the batch.
  const size_t n = q.PopBatch(&out, 4, /*coalesce_us=*/500000);
  straggler.join();
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(BoundedQueueTest, PopBatchReturnsZeroWhenClosedAndDrained) {
  BoundedQueue<int> q(4);
  q.Close();
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 4, 1000), 0u);
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersConserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(16);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++popped;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace crowdrl
