#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace crowdrl {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.Uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntIsBoundedAndCoversRange) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(31);
  const int n = 20000;
  int64_t sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(4.2);
  EXPECT_NEAR(static_cast<double>(sum) / n, 4.2, 0.1);
  // Large-lambda branch.
  sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(120.0);
  EXPECT_NEAR(static_cast<double>(sum) / n, 120.0, 1.0);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(37);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.Discrete(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(41);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(43);
  Rng child = a.Fork();
  // Drawing from the child must not affect the parent's future stream
  // relative to a reference that forked identically.
  Rng b(43);
  Rng child_b = b.Fork();
  for (int i = 0; i < 10; ++i) child.NextU64();
  EXPECT_EQ(a.NextU64(), b.NextU64());
  (void)child_b;
}

}  // namespace
}  // namespace crowdrl
