// The shared-memory ring transport substrate: segment create/map
// validation against hostile fds, SPSC byte-stream integrity across wrap
// points and under concurrency (the acquire/release contract runs under
// TSan in CI), framing over the ring including every-byte header
// corruption, peer-death in all flavors (cooperative close at and inside
// a frame, crash detection via the control fd), full-ring backpressure,
// and the steady-state zero-syscall property the transport advertises —
// counter-asserted, not assumed.
#include "net/shm_ring.h"

#include <gtest/gtest.h>

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/shm_transport.h"
#include "net/wire.h"

namespace crowdrl {
namespace net {
namespace {

constexpr uint64_t kTestCapacity = kMinShmRingCapacity;  // 4 KiB

// ---- segment create/map validation ----

TEST(ShmSegmentTest, CreateRejectsInvalidCapacities) {
  EXPECT_EQ(ShmSegment::Create(0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShmSegment::Create(kMinShmRingCapacity / 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShmSegment::Create(3 * kMinShmRingCapacity).status().code(),
            StatusCode::kInvalidArgument);  // in range but not a power of 2
  EXPECT_EQ(ShmSegment::Create(2 * kMaxShmRingCapacity).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShmSegmentTest, CreateAndMapShareTheSamePages) {
  Result<ShmSegment> created = ShmSegment::Create(kTestCapacity);
  ASSERT_TRUE(created.ok());
  ShmSegment creator = std::move(created).value();
  EXPECT_EQ(creator.ring_capacity(), kTestCapacity);
  EXPECT_EQ(creator.segment_bytes(), ShmSegmentBytes(kTestCapacity));

  Result<ShmSegment> mapped = ShmSegment::Map(FdHandle(::dup(creator.fd())));
  ASSERT_TRUE(mapped.ok());
  ShmSegment peer = std::move(mapped).value();
  EXPECT_EQ(peer.ring_capacity(), kTestCapacity);

  // A byte written through one mapping is visible through the other: the
  // two ShmSegments are views of one physical segment, not copies.
  creator.ring_data(0)[7] = 0x5A;
  EXPECT_EQ(peer.ring_data(0)[7], 0x5A);
  peer.ring_data(1)[0] = 0x3C;
  EXPECT_EQ(creator.ring_data(1)[0], 0x3C);
}

TEST(ShmSegmentTest, MapRejectsTruncatedSegment) {
  FdHandle fd(::memfd_create("crowdrl-shm-test", MFD_CLOEXEC));
  ASSERT_TRUE(fd.valid());
  ASSERT_EQ(::ftruncate(fd.fd(), 64), 0);  // smaller than the header
  EXPECT_EQ(ShmSegment::Map(std::move(fd)).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ShmSegment::Map(FdHandle()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShmSegmentTest, MapRejectsCorruptedHeaders) {
  Result<ShmSegment> created = ShmSegment::Create(kTestCapacity);
  ASSERT_TRUE(created.ok());
  ShmSegment seg = std::move(created).value();

  seg.header()->magic = 0xDEADBEEF;
  EXPECT_EQ(ShmSegment::Map(FdHandle(::dup(seg.fd()))).status().code(),
            StatusCode::kInvalidArgument);
  seg.header()->magic = kShmMagic;

  seg.header()->layout_version = kShmLayoutVersion + 1;
  EXPECT_EQ(ShmSegment::Map(FdHandle(::dup(seg.fd()))).status().code(),
            StatusCode::kFailedPrecondition);
  seg.header()->layout_version = kShmLayoutVersion;

  // A capacity that disagrees with the fd's actual size would let a
  // hostile peer induce out-of-bounds ring pointers — rejected.
  seg.header()->ring_capacity = kTestCapacity * 2;
  EXPECT_EQ(ShmSegment::Map(FdHandle(::dup(seg.fd()))).status().code(),
            StatusCode::kOutOfRange);
  seg.header()->ring_capacity = 999;  // also not a power of two
  EXPECT_EQ(ShmSegment::Map(FdHandle(::dup(seg.fd()))).status().code(),
            StatusCode::kInvalidArgument);
  seg.header()->ring_capacity = kTestCapacity;
  EXPECT_TRUE(ShmSegment::Map(FdHandle(::dup(seg.fd()))).ok());
}

// ---- raw SPSC ring semantics ----

TEST(SpscRingTest, ByteStreamSurvivesManyWrapArounds) {
  Result<ShmSegment> created = ShmSegment::Create(kTestCapacity);
  ASSERT_TRUE(created.ok());
  ShmSegment seg = std::move(created).value();
  SpscRing ring(&seg.header()->client_to_server, seg.ring_data(0),
                kTestCapacity);

  // Odd-sized chunks stream through the 4 KiB ring, repeatedly splitting
  // at the wrap point; the consumer must always see the exact sequence.
  constexpr size_t kChunk = 37;
  uint64_t produced = 0, consumed = 0;
  uint8_t out[kChunk], in[kChunk];
  for (int iter = 0; iter < 2000; ++iter) {
    for (size_t i = 0; i < kChunk; ++i) {
      out[i] = static_cast<uint8_t>((produced + i) * 1315423911u >> 13);
    }
    size_t sent = 0;
    while (sent < kChunk) {
      sent += ring.TryWrite(out + sent, kChunk - sent);
    }
    produced += kChunk;
    size_t got = 0;
    while (got < kChunk) {
      got += ring.TryRead(in + got, kChunk - got);
    }
    for (size_t i = 0; i < kChunk; ++i) {
      ASSERT_EQ(in[i],
                static_cast<uint8_t>((consumed + i) * 1315423911u >> 13))
          << "byte " << consumed + i;
    }
    consumed += kChunk;
  }
  EXPECT_EQ(ring.used(), 0u);
}

TEST(SpscRingTest, FullRingBackpressuresAndResumes) {
  Result<ShmSegment> created = ShmSegment::Create(kTestCapacity);
  ASSERT_TRUE(created.ok());
  ShmSegment seg = std::move(created).value();
  SpscRing ring(&seg.header()->client_to_server, seg.ring_data(0),
                kTestCapacity);

  std::vector<uint8_t> bytes(kTestCapacity + 100, 0xAB);
  // A write larger than the free space is truncated to exactly fill the
  // ring — the torn remainder is the caller's to retry, never silently
  // dropped or overwritten.
  EXPECT_EQ(ring.TryWrite(bytes.data(), bytes.size()), kTestCapacity);
  EXPECT_EQ(ring.used(), kTestCapacity);
  EXPECT_EQ(ring.TryWrite(bytes.data(), 1), 0u);  // full: zero, not a wedge

  uint8_t sink[256];
  EXPECT_EQ(ring.TryRead(sink, sizeof(sink)), sizeof(sink));
  EXPECT_EQ(ring.TryWrite(bytes.data(), bytes.size()), sizeof(sink));
  EXPECT_EQ(ring.used(), kTestCapacity);
}

TEST(SpscRingTest, ConcurrentProducerConsumerPreservesTheStream) {
  Result<ShmSegment> created = ShmSegment::Create(kTestCapacity);
  ASSERT_TRUE(created.ok());
  ShmSegment seg = std::move(created).value();
  SpscRing ring(&seg.header()->client_to_server, seg.ring_data(0),
                kTestCapacity);

  // 1 MiB through a 4 KiB ring with a free-running producer and consumer:
  // under TSan this is the proof of the acquire/release cursor contract
  // (a missing fence shows up as a race or as corrupted bytes).
  constexpr uint64_t kTotal = 1 << 20;
  std::thread producer([&ring] {
    uint8_t buf[193];
    uint64_t pos = 0;
    while (pos < kTotal) {
      const size_t n =
          static_cast<size_t>(std::min<uint64_t>(sizeof(buf), kTotal - pos));
      for (size_t i = 0; i < n; ++i) {
        buf[i] = static_cast<uint8_t>((pos + i) ^ ((pos + i) >> 7));
      }
      size_t sent = 0;
      while (sent < n) {
        const size_t k = ring.TryWrite(buf + sent, n - sent);
        if (k == 0) std::this_thread::yield();
        sent += k;
      }
      pos += n;
    }
  });
  uint8_t buf[251];
  uint64_t pos = 0;
  while (pos < kTotal) {
    const size_t k = ring.TryRead(
        buf, static_cast<size_t>(
                 std::min<uint64_t>(sizeof(buf), kTotal - pos)));
    if (k == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < k; ++i) {
      ASSERT_EQ(buf[i], static_cast<uint8_t>((pos + i) ^ ((pos + i) >> 7)))
          << "byte " << pos + i;
    }
    pos += k;
  }
  producer.join();
  EXPECT_EQ(ring.used(), 0u);
}

// ---- transport over the rings ----

struct TransportPair {
  std::unique_ptr<ShmTransport> server;
  std::unique_ptr<ShmTransport> client;
  FdHandle server_ctl;  // optional control sockets (crash detection)
  FdHandle client_ctl;
};

TransportPair MakePair(uint64_t capacity, bool with_control = false) {
  TransportPair pair;
  if (with_control) {
    EXPECT_TRUE(MakeSocketPair(&pair.server_ctl, &pair.client_ctl).ok());
  }
  Result<ShmSegment> created = ShmSegment::Create(capacity);
  EXPECT_TRUE(created.ok());
  ShmSegment server_seg = std::move(created).value();
  Result<ShmSegment> mapped =
      ShmSegment::Map(FdHandle(::dup(server_seg.fd())));
  EXPECT_TRUE(mapped.ok());
  pair.server = std::make_unique<ShmTransport>(
      std::move(server_seg), ShmRole::kServer,
      with_control ? pair.server_ctl.fd() : -1);
  pair.client = std::make_unique<ShmTransport>(
      std::move(mapped).value(), ShmRole::kClient,
      with_control ? pair.client_ctl.fd() : -1);
  return pair;
}

TEST(ShmTransportTest, FramesRoundTripBitExactInBothDirections) {
  TransportPair pair = MakePair(kDefaultShmRingCapacity);
  const std::vector<size_t> sizes = {0, 1, 15, 16, 17, 1000, 4096};
  uint32_t seq = 1;
  for (const size_t size : sizes) {
    std::string body(size, '\0');
    for (size_t i = 0; i < size; ++i) {
      body[i] = static_cast<char>(i * 2654435761u >> 11);
    }
    ASSERT_TRUE(
        pair.client->SendFrame(MsgType::kStatsRequest, seq, body).ok());
    FrameHeader header;
    std::string got;
    ASSERT_TRUE(pair.server->RecvFrame(&header, &got).ok());
    EXPECT_EQ(header.seq, seq);
    EXPECT_EQ(static_cast<MsgType>(header.type), MsgType::kStatsRequest);
    EXPECT_EQ(got, body);

    ASSERT_TRUE(
        pair.server->SendFrame(MsgType::kStatsResponse, seq, body).ok());
    ASSERT_TRUE(pair.client->RecvFrame(&header, &got).ok());
    EXPECT_EQ(header.seq, seq);
    EXPECT_EQ(got, body);
    ++seq;
  }
}

TEST(ShmTransportTest, SteadyStateMovesFramesWithZeroSyscalls) {
  TransportPair pair = MakePair(kDefaultShmRingCapacity);
  // 64 KiB of frames into a 1 MiB ring: the producer never fills it, the
  // consumer always finds data — the advertised steady state. Every
  // potential syscall in the wait path is counted, so these zeros are the
  // zero-per-frame-syscall acceptance criterion, asserted.
  const std::string body(1000, 'z');
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(pair.client->SendFrame(MsgType::kStatsRequest, i, body).ok());
  }
  FrameHeader header;
  std::string got;
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(pair.server->RecvFrame(&header, &got).ok());
    ASSERT_EQ(header.seq, i);
  }
  const RingStats sender = pair.client->ring_stats();
  const RingStats receiver = pair.server->ring_stats();
  EXPECT_EQ(sender.send_stalls, 0);
  EXPECT_EQ(sender.wait_syscalls, 0);
  EXPECT_EQ(receiver.recv_waits, 0);
  EXPECT_EQ(receiver.wait_syscalls, 0);
  EXPECT_EQ(sender.ring_capacity,
            static_cast<int64_t>(kDefaultShmRingCapacity));
}

TEST(ShmTransportTest, FrameLargerThanRingStreamsThroughBackpressure) {
  TransportPair pair = MakePair(kTestCapacity);  // 4 KiB rings
  std::string body(64 << 10, '\0');              // 64 KiB frame
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<char>(i * 40503u >> 9);
  }
  std::thread writer([&] {
    ASSERT_TRUE(
        pair.client->SendFrame(MsgType::kFeedbackRequest, 9, body).ok());
  });
  FrameHeader header;
  std::string got;
  ASSERT_TRUE(pair.server->RecvFrame(&header, &got).ok());
  writer.join();
  EXPECT_EQ(got, body);
  // The writer must have hit the full ring (the frame is 16x the ring) and
  // its stalls must be visible in the stats the daemon aggregates.
  EXPECT_GT(pair.client->ring_stats().send_stalls, 0);
}

TEST(ShmTransportTest, ConsumerCloseFailsTheSenderInsteadOfWedging) {
  TransportPair pair = MakePair(kTestCapacity);
  pair.client->Close();  // the reader of server->client is gone
  // Bigger than the ring so the send must wait on consumed space — which
  // will never come; the close flag turns that into an error, not a hang.
  const std::string body(2 * kTestCapacity, 'q');
  EXPECT_EQ(pair.server->SendFrame(MsgType::kStatsResponse, 1, body).code(),
            StatusCode::kIoError);
}

TEST(ShmTransportTest, ProducerCloseIsEofAtFrameBoundary) {
  TransportPair pair = MakePair(kTestCapacity);
  ASSERT_TRUE(pair.server->SendFrame(MsgType::kStatsResponse, 3, "tail").ok());
  pair.server->Close();
  FrameHeader header;
  std::string got;
  // The frame published before the close still arrives intact...
  ASSERT_TRUE(pair.client->RecvFrame(&header, &got).ok());
  EXPECT_EQ(got, "tail");
  // ...then the stream ends cleanly: NotFound, the same contract as a
  // socket peer closing between frames.
  EXPECT_EQ(pair.client->RecvFrame(&header, &got).code(),
            StatusCode::kNotFound);
}

TEST(ShmTransportTest, ProducerCloseMidFrameIsAnIoError) {
  Result<ShmSegment> created = ShmSegment::Create(kTestCapacity);
  ASSERT_TRUE(created.ok());
  ShmSegment raw = std::move(created).value();
  Result<ShmSegment> mapped = ShmSegment::Map(FdHandle(::dup(raw.fd())));
  ASSERT_TRUE(mapped.ok());
  ShmTransport client(std::move(mapped).value(), ShmRole::kClient, -1);

  // A producer that dies after the header but before the body: write the
  // torn frame through a raw ring view, then close.
  SpscRing s2c(&raw.header()->server_to_client, raw.ring_data(1),
               kTestCapacity);
  FrameHeader header;
  header.type = static_cast<uint16_t>(MsgType::kStatsResponse);
  header.seq = 5;
  header.body_len = 100;  // promised, never delivered
  ASSERT_EQ(s2c.TryWrite(&header, sizeof(header)), sizeof(header));
  s2c.CloseProducer();

  std::string got;
  EXPECT_EQ(client.RecvFrame(&header, &got).code(), StatusCode::kIoError);
}

TEST(ShmTransportTest, ControlFdEofUnparksAndFailsWithinBoundedTime) {
  TransportPair pair = MakePair(kTestCapacity, /*with_control=*/true);
  // Simulate a crashed server: its control-socket end closes with the
  // process, but no cooperative close flag was ever set in the segment.
  // (The still-live server transport object is irrelevant — a crashed
  // process simply never touches the segment again.)
  pair.server_ctl.Reset();
  FrameHeader header;
  std::string got;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(pair.client->RecvFrame(&header, &got).code(),
            StatusCode::kIoError);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Crash detection is bounded by the backoff ladder's probe cadence.
  EXPECT_LT(waited, 5.0);
  EXPECT_GT(pair.client->ring_stats().wait_syscalls, 0);
}

TEST(ShmTransportTest, EveryCorruptedHeaderByteIsHandledDeterministically) {
  const std::string body = "corruption-test-body";  // 20 bytes
  for (size_t byte = 0; byte < sizeof(FrameHeader); ++byte) {
    Result<ShmSegment> created = ShmSegment::Create(kTestCapacity);
    ASSERT_TRUE(created.ok());
    ShmSegment raw = std::move(created).value();
    Result<ShmSegment> mapped = ShmSegment::Map(FdHandle(::dup(raw.fd())));
    ASSERT_TRUE(mapped.ok());
    ShmTransport client(std::move(mapped).value(), ShmRole::kClient, -1);

    FrameHeader header;
    header.type = static_cast<uint16_t>(MsgType::kStatsResponse);
    header.seq = 77;
    header.body_len = static_cast<uint32_t>(body.size());
    uint8_t bytes[sizeof(FrameHeader)];
    std::memcpy(bytes, &header, sizeof(header));
    bytes[byte] ^= 0xFF;

    SpscRing s2c(&raw.header()->server_to_client, raw.ring_data(1),
                 kTestCapacity);
    ASSERT_EQ(s2c.TryWrite(bytes, sizeof(bytes)), sizeof(bytes));
    ASSERT_EQ(s2c.TryWrite(body.data(), body.size()), body.size());
    s2c.CloseProducer();  // bounds every outcome: no corruption may hang

    FrameHeader got_header;
    std::string got;
    const Status st = client.RecvFrame(&got_header, &got);
    if (byte < 4) {
      EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << "magic byte "
                                                         << byte;
    } else if (byte < 6) {
      EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition)
          << "version byte " << byte;
    } else if (byte < 8) {
      EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << "type byte "
                                                         << byte;
    } else if (byte < 12) {
      // seq is opaque to the framing layer: the frame is intact, the
      // corrupted sequence number is the RPC layer's problem.
      EXPECT_TRUE(st.ok()) << "seq byte " << byte << ": " << st.message();
      EXPECT_EQ(got, body);
      EXPECT_NE(got_header.seq, 77u);
    } else if (byte < 15) {
      // body_len inflated below the oversize bound: the reader waits for
      // bytes that never come and the closed producer turns that into a
      // clean mid-frame error instead of a hang.
      EXPECT_EQ(st.code(), StatusCode::kIoError) << "len byte " << byte;
    } else {
      // The top length byte pushes past kMaxFrameBody: typed oversize
      // fault before any allocation.
      EXPECT_EQ(st.code(), StatusCode::kOutOfRange) << "len byte " << byte;
    }
  }
}

TEST(ShmTransportTest, BootstrapHandshakeOverSocketPairYieldsWorkingRings) {
  FdHandle server_fd, client_fd;
  ASSERT_TRUE(MakeSocketPair(&server_fd, &client_fd).ok());

  std::unique_ptr<ShmTransport> server;
  std::thread server_thread([&] {
    FrameHeader header;
    std::string body;
    ASSERT_TRUE(RecvFrame(server_fd.fd(), &header, &body).ok());
    ASSERT_EQ(static_cast<MsgType>(header.type), MsgType::kShmSetupRequest);
    Result<std::unique_ptr<ShmTransport>> accepted =
        ShmAcceptServer(server_fd.fd(), header.seq, body);
    ASSERT_TRUE(accepted.ok());
    server = std::move(accepted).value();
  });
  Result<std::unique_ptr<ShmTransport>> connected =
      ShmConnectClient(client_fd.fd(), kTestCapacity);
  server_thread.join();
  ASSERT_TRUE(connected.ok());
  std::unique_ptr<ShmTransport> client = std::move(connected).value();

  // The negotiated rings carry traffic both ways.
  ASSERT_TRUE(client->SendFrame(MsgType::kStatsRequest, 11, "ping").ok());
  FrameHeader header;
  std::string got;
  ASSERT_TRUE(server->RecvFrame(&header, &got).ok());
  EXPECT_EQ(got, "ping");
  ASSERT_TRUE(server->SendFrame(MsgType::kStatsResponse, 11, "pong").ok());
  ASSERT_TRUE(client->RecvFrame(&header, &got).ok());
  EXPECT_EQ(got, "pong");
  EXPECT_EQ(client->ring_stats().ring_capacity,
            static_cast<int64_t>(kTestCapacity));
}

TEST(ShmTransportTest, BootstrapRejectsHostileCapacities) {
  FdHandle server_fd, client_fd;
  ASSERT_TRUE(MakeSocketPair(&server_fd, &client_fd).ok());
  // The server half parses the request before creating anything: a
  // hostile capacity never reaches memfd_create.
  std::string body;
  AppendShmSetupRequest(3 * kMinShmRingCapacity, &body);  // not a power of 2
  EXPECT_FALSE(ShmAcceptServer(server_fd.fd(), 0, body).ok());
  body.clear();
  AppendShmSetupRequest(kMaxShmRingCapacity * 2, &body);
  EXPECT_FALSE(ShmAcceptServer(server_fd.fd(), 0, body).ok());
}

TEST(ShmTransportTest, ConcurrentPingPongSurvivesThousandsOfFrames) {
  TransportPair pair = MakePair(kTestCapacity);
  constexpr int kRounds = 2000;
  std::thread echo([&] {
    FrameHeader header;
    std::string body;
    for (int i = 0; i < kRounds; ++i) {
      ASSERT_TRUE(pair.server->RecvFrame(&header, &body).ok());
      ASSERT_TRUE(pair.server
                      ->SendFrame(static_cast<MsgType>(header.type),
                                  header.seq, body)
                      .ok());
    }
  });
  FrameHeader header;
  std::string got;
  for (int i = 0; i < kRounds; ++i) {
    const std::string body = "frame " + std::to_string(i);
    ASSERT_TRUE(pair.client
                    ->SendFrame(MsgType::kStatsRequest,
                                static_cast<uint32_t>(i), body)
                    .ok());
    ASSERT_TRUE(pair.client->RecvFrame(&header, &got).ok());
    ASSERT_EQ(got, body);
    ASSERT_EQ(header.seq, static_cast<uint32_t>(i));
  }
  echo.join();
}

}  // namespace
}  // namespace net
}  // namespace crowdrl
