// The EINTR-safe socket layer: RAII ownership, full-buffer I/O over real
// AF_UNIX descriptors, frame send/receive with typed header faults, and
// the SocketServer accept/handler/stop lifecycle (runs under TSan in CI).
#include "net/socket.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/server.h"

namespace crowdrl {
namespace net {
namespace {

std::string TestSocketPath(const std::string& name) {
  return testing::TempDir() + "crowdrl_" + name + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(FdHandleTest, OwnsAndMovesDescriptor) {
  FdHandle a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  const int raw = a.fd();

  FdHandle moved = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(moved.fd(), raw);

  // Reset closes: a write to the closed end's peer sees EOF.
  moved.Reset();
  EXPECT_FALSE(moved.valid());
  char byte;
  bool eof = false;
  const Status st = ReadAll(b.fd(), &byte, 1, &eof);
  EXPECT_TRUE(eof);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(SocketIoTest, WriteAllReadAllRoundTripsLargePayload) {
  FdHandle a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  // Larger than any socket buffer: forces short writes, so the loops are
  // really exercised (the writer must run concurrently with the reader).
  std::string payload(4 << 20, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 1315423911u);
  }
  std::thread writer([&] {
    ASSERT_TRUE(WriteAll(a.fd(), payload.data(), payload.size()).ok());
  });
  std::string received(payload.size(), '\0');
  ASSERT_TRUE(ReadAll(b.fd(), &received[0], received.size()).ok());
  writer.join();
  EXPECT_EQ(payload, received);
}

TEST(SocketIoTest, ReadAllReportsMidReadCloseAsIoError) {
  FdHandle a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  ASSERT_TRUE(WriteAll(a.fd(), "abc", 3).ok());
  a.Reset();  // close after 3 of the expected 8 bytes
  char buf[8];
  bool eof = true;
  const Status st = ReadAll(b.fd(), buf, sizeof(buf), &eof);
  EXPECT_FALSE(eof);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(SocketIoTest, WriteToClosedPeerFailsWithoutSigpipe) {
  FdHandle a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  b.Reset();
  // Large enough to defeat the kernel buffer on the first closed-peer
  // write; MSG_NOSIGNAL means we observe a Status, not a dead process.
  const std::string payload(1 << 20, 'x');
  const Status st = WriteAll(a.fd(), payload.data(), payload.size());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(FrameIoTest, SendRecvFrameRoundTrips) {
  FdHandle a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  const std::string body = "hello frame";
  ASSERT_TRUE(SendFrame(a.fd(), MsgType::kStatsRequest, 42, body).ok());
  FrameHeader header;
  std::string received;
  ASSERT_TRUE(RecvFrame(b.fd(), &header, &received).ok());
  EXPECT_EQ(header.magic, kWireMagic);
  EXPECT_EQ(header.version, kWireVersion);
  EXPECT_EQ(static_cast<MsgType>(header.type), MsgType::kStatsRequest);
  EXPECT_EQ(header.seq, 42u);
  EXPECT_EQ(received, body);
}

TEST(FrameIoTest, CoalescedSendIsByteIdenticalToHeaderThenBody) {
  // SendFrame gathers header+body into one sendmsg; the bytes on the wire
  // must be exactly the packed header followed by the body — nothing
  // reordered, padded or duplicated across the partial-send resume path.
  FdHandle a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  // Big enough to overflow the socket buffer, so SendmsgAll really takes
  // the advance-across-partial-sends path at least once.
  std::string body(1 << 20, '\0');
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<char>(i * 2654435761u);
  }
  std::thread writer([&] {
    ASSERT_TRUE(SendFrame(a.fd(), MsgType::kRankRequest, 7, body).ok());
  });
  std::string wire(sizeof(FrameHeader) + body.size(), '\0');
  ASSERT_TRUE(ReadAll(b.fd(), &wire[0], wire.size()).ok());
  writer.join();

  FrameHeader expected;
  expected.type = static_cast<uint16_t>(MsgType::kRankRequest);
  expected.seq = 7;
  expected.body_len = static_cast<uint32_t>(body.size());
  std::string golden(sizeof(expected) + body.size(), '\0');
  std::memcpy(&golden[0], &expected, sizeof(expected));
  std::memcpy(&golden[sizeof(expected)], body.data(), body.size());
  EXPECT_EQ(wire, golden);
}

TEST(FrameIoTest, ScmRightsCarriesALiveDescriptorWithTheFrame) {
  FdHandle a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  FdHandle pass_a, pass_b;
  ASSERT_TRUE(MakeSocketPair(&pass_a, &pass_b).ok());

  ASSERT_TRUE(
      SendFrameWithFd(a.fd(), MsgType::kShmSetupResponse, 9, "geometry",
                      pass_a.fd())
          .ok());
  FrameHeader header;
  std::string body;
  FdHandle received;
  ASSERT_TRUE(RecvFrameWithFd(b.fd(), &header, &body, &received).ok());
  EXPECT_EQ(static_cast<MsgType>(header.type), MsgType::kShmSetupResponse);
  EXPECT_EQ(body, "geometry");
  ASSERT_TRUE(received.valid());
  EXPECT_NE(received.fd(), pass_a.fd()) << "expected a dup'd descriptor";

  // The received descriptor is the same socket description: bytes written
  // through it come out of the passed pair's other end.
  ASSERT_TRUE(WriteAll(received.fd(), "ping", 4).ok());
  char buf[4];
  ASSERT_TRUE(ReadAll(pass_b.fd(), buf, sizeof(buf)).ok());
  EXPECT_EQ(std::string(buf, 4), "ping");

  // A frame without ancillary data leaves `received` invalid, and a bad
  // descriptor is rejected before anything hits the wire.
  ASSERT_TRUE(SendFrame(a.fd(), MsgType::kStatsRequest, 10, "").ok());
  ASSERT_TRUE(RecvFrameWithFd(b.fd(), &header, &body, &received).ok());
  EXPECT_FALSE(received.valid());
  EXPECT_EQ(
      SendFrameWithFd(a.fd(), MsgType::kStatsRequest, 11, "", -1).code(),
      StatusCode::kInvalidArgument);
}

TEST(FrameIoTest, RecvFrameRejectsBadHeaderWithTypedFault) {
  FdHandle a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  FrameHeader bad;
  bad.magic = 0x12345678;
  bad.type = static_cast<uint16_t>(MsgType::kStatsRequest);
  ASSERT_TRUE(WriteAll(a.fd(), &bad, sizeof(bad)).ok());
  FrameHeader header;
  std::string body;
  const Status st = RecvFrame(b.fd(), &header, &body);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);  // kBadMagic

  FrameHeader oversized;
  oversized.type = static_cast<uint16_t>(MsgType::kStatsRequest);
  oversized.body_len = kMaxFrameBody + 1;
  ASSERT_TRUE(WriteAll(a.fd(), &oversized, sizeof(oversized)).ok());
  EXPECT_EQ(RecvFrame(b.fd(), &header, &body).code(),
            StatusCode::kOutOfRange);  // kOversized: never allocates 4GiB
}

TEST(FrameIoTest, RecvFrameReportsCleanCloseAsNotFound) {
  FdHandle a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  a.Reset();
  FrameHeader header;
  std::string body;
  EXPECT_EQ(RecvFrame(b.fd(), &header, &body).code(), StatusCode::kNotFound);
}

TEST(FrameIoTest, SendFrameRefusesOversizedBody) {
  FdHandle a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b).ok());
  std::string body;
  body.resize(kMaxFrameBody + 1);
  EXPECT_EQ(SendFrame(a.fd(), MsgType::kError, 0, body).code(),
            StatusCode::kOutOfRange);
}

TEST(ListenConnectTest, RejectsOverlongPath) {
  const std::string absurd(200, 'p');
  EXPECT_EQ(ListenUnix(absurd).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ConnectUnix(absurd).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ListenConnectTest, ConnectToMissingSocketFails) {
  EXPECT_FALSE(ConnectUnix(TestSocketPath("nonexistent")).ok());
}

TEST(SocketServerTest, ServesEchoToConcurrentClients) {
  const std::string path = TestSocketPath("echo");
  SocketServer server(path, [](int fd, uint64_t conn_id) {
    (void)conn_id;
    FrameHeader header;
    std::string body;
    while (RecvFrame(fd, &header, &body).ok()) {
      if (!SendFrame(fd, static_cast<MsgType>(header.type), header.seq, body)
               .ok()) {
        break;
      }
    }
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kFramesPerClient = 25;
  std::vector<std::thread> clients;
  std::atomic<int> echoed{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<FdHandle> conn = ConnectUnix(path);
      ASSERT_TRUE(conn.ok());
      for (int i = 0; i < kFramesPerClient; ++i) {
        const std::string body =
            "client " + std::to_string(c) + " frame " + std::to_string(i);
        ASSERT_TRUE(SendFrame(conn->fd(), MsgType::kStatsRequest,
                              static_cast<uint32_t>(i), body)
                        .ok());
        FrameHeader header;
        std::string received;
        ASSERT_TRUE(RecvFrame(conn->fd(), &header, &received).ok());
        ASSERT_EQ(received, body);
        ASSERT_EQ(header.seq, static_cast<uint32_t>(i));
        echoed.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(echoed.load(), kClients * kFramesPerClient);
  EXPECT_EQ(server.connections_accepted(), kClients);
  server.Stop();
  // All clients disconnected before Stop: nothing was dropped.
  EXPECT_EQ(server.connections_dropped(), 0);
  // The socket file is gone; new connections fail.
  EXPECT_FALSE(ConnectUnix(path).ok());
}

TEST(SocketServerTest, StopDisconnectsParkedHandlers) {
  const std::string path = TestSocketPath("parked");
  std::atomic<int> handler_exits{0};
  SocketServer server(path, [&](int fd, uint64_t conn_id) {
    (void)conn_id;
    FrameHeader header;
    std::string body;
    // Parked in recv with no traffic: only Stop's shutdown(2) frees it.
    while (RecvFrame(fd, &header, &body).ok()) {
    }
    handler_exits.fetch_add(1);
  });
  ASSERT_TRUE(server.Start().ok());
  Result<FdHandle> c1 = ConnectUnix(path);
  Result<FdHandle> c2 = ConnectUnix(path);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  // Make sure both connections were accepted before stopping.
  while (server.connections_accepted() < 2) {
    std::this_thread::yield();
  }
  server.Stop();  // must not hang
  EXPECT_EQ(handler_exits.load(), 2);
  EXPECT_EQ(server.connections_dropped(), 2);
}

TEST(SocketServerTest, LifecycleIsOneShotAndIdempotent) {
  const std::string path = TestSocketPath("lifecycle");
  {
    SocketServer server(path, [](int, uint64_t) {});
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(server.Start().code(), StatusCode::kFailedPrecondition);
    server.Stop();
    server.Stop();  // idempotent
  }
  // A fresh server re-binds the same path (stale file replaced).
  SocketServer again(path, [](int, uint64_t) {});
  ASSERT_TRUE(again.Start().ok());
  EXPECT_TRUE(ConnectUnix(path).ok());
  again.Stop();
}

}  // namespace
}  // namespace net
}  // namespace crowdrl
