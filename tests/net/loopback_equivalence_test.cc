// The transport-level extension of the serve equivalence chain: one actor
// driving the service *over a loopback UNIX-domain socket* replays the
// exact trajectory of one actor driving it in-process. Encode → decode →
// rank → feedback through the daemon's pending map must be bit-for-bit
// the in-process Session path — every ranking, every learner step, every
// final network parameter. Any lossy float handling, reordered dispatch
// or decode drift in the wire layer shows up here as a hard failure.
#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/actor_client.h"
#include "net/learner_daemon.h"
#include "serve/workload.h"
#include "tensor/matrix.h"

namespace crowdrl {
namespace net {
namespace {

FrameworkConfig SmallFrameworkConfig() {
  FrameworkConfig cfg = FrameworkConfig::Defaults();
  cfg.worker_dqn.net.hidden_dim = 16;
  cfg.worker_dqn.net.num_heads = 2;
  cfg.worker_dqn.batch_size = 8;
  cfg.worker_dqn.replay.capacity = 256;
  cfg.requester_dqn.net.hidden_dim = 16;
  cfg.requester_dqn.net.num_heads = 2;
  cfg.requester_dqn.batch_size = 8;
  cfg.requester_dqn.replay.capacity = 256;
  cfg.predictor.max_segments = 3;
  cfg.max_failed_stored = 2;
  cfg.warmup_learn_steps = 20;
  cfg.seed = 77;
  return cfg;
}

/// S = 1, inline learning, per-event publication: the configuration under
/// which a single-driver service is bit-deterministic (snapshot == live
/// nets at every decision), so the two stacks can only diverge through
/// the transport itself.
std::unique_ptr<ShardedArrangementService> MakeService(
    const ServeWorkload& workload) {
  ServiceConfig service_cfg;
  service_cfg.inline_learning = true;
  service_cfg.publish_every_events = 1;
  return ShardedArrangementService::Create(
      SmallFrameworkConfig(), &workload, workload.worker_feature_dim(),
      workload.task_feature_dim(), /*num_shards=*/1, service_cfg);
}

void ExpectNetsIdentical(const DqnAgent* a, const DqnAgent* b) {
  ASSERT_EQ(a != nullptr, b != nullptr);
  if (a == nullptr) return;
  const auto pa = a->online().Params();
  const auto pb = b->online().Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(Matrix::MaxAbsDiff(*pa[i], *pb[i]), 0.0f)
        << "online param " << i << " diverged across the wire";
  }
  const auto ta = a->target_net().Params();
  const auto tb = b->target_net().Params();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(Matrix::MaxAbsDiff(*ta[i], *tb[i]), 0.0f)
        << "target param " << i << " diverged across the wire";
  }
  EXPECT_EQ(a->stored(), b->stored());
  EXPECT_EQ(a->learn_steps(), b->learn_steps());
}

/// The full equivalence run, parameterized by the wire transport: the
/// bit-match contract must hold identically whether frames cross a
/// socket or a shared-memory ring pair.
void RunLoopbackEquivalence(const ActorClient::TransportOptions& transport) {
  // One frozen workload shared by both stacks: its reads are physically
  // pure, and both drivers derive identical arrival streams from
  // identically seeded rngs.
  ServeWorkloadConfig workload_cfg;
  workload_cfg.num_workers = 16;
  workload_cfg.num_tasks = 24;
  workload_cfg.pool_size = 6;
  workload_cfg.warm_completions = 64;
  workload_cfg.seed = 11;
  const ServeWorkload workload(workload_cfg);

  // --- in-process reference ---
  std::unique_ptr<ShardedArrangementService> inproc = MakeService(workload);
  inproc->Start();
  std::unique_ptr<ShardedArrangementService::Session> session =
      inproc->NewSession();

  // --- wire stack: same config, behind a loopback daemon ---
  std::unique_ptr<ShardedArrangementService> remote = MakeService(workload);
  remote->Start();
  const std::string socket_path = testing::TempDir() + "crowdrl_equiv_" +
                                  std::to_string(::getpid()) + ".sock";
  LearnerDaemon daemon(remote.get(), socket_path);
  ASSERT_TRUE(daemon.Start().ok());
  Result<std::unique_ptr<ActorClient>> client =
      ActorClient::Connect(socket_path, transport);
  ASSERT_TRUE(client.ok());
  ActorClient* actor = client.value().get();
  const bool shm =
      transport.kind == ActorClient::TransportOptions::Kind::kShm;
  EXPECT_STREQ(actor->transport_name(), shm ? "shm" : "uds");

  constexpr int kEvents = 40;
  constexpr uint64_t kDriverSeed = 20260808;
  Rng inproc_rng(kDriverSeed);
  Rng wire_rng(kDriverSeed);
  int completions = 0;
  for (int i = 0; i < kEvents; ++i) {
    // In-process step.
    const Observation obs_a = workload.MakeObservation(i, &inproc_rng);
    inproc->RecordArrival(obs_a);
    ShardedArrangementService::Ticket ticket;
    const std::vector<int> ranking_a = session->Rank(obs_a, &ticket);
    const crowdrl::Feedback feedback_a =
        workload.SimulateFeedback(obs_a, ranking_a, &inproc_rng);
    session->Feedback(obs_a, ticket, ranking_a, feedback_a);

    // Wire step (identical rng stream ⇒ identical observation).
    const Observation obs_b = workload.MakeObservation(i, &wire_rng);
    ASSERT_EQ(obs_a.arrival_index, obs_b.arrival_index);
    ASSERT_EQ(obs_a.worker, obs_b.worker);
    DecodedRankResponse rank;
    ASSERT_TRUE(actor->Rank(obs_b, /*record_arrival=*/true, &rank).ok());
    ASSERT_EQ(rank.ranking, ranking_a)
        << "ranking diverged across the wire at arrival " << i;
    EXPECT_FALSE(rank.degraded);
    const crowdrl::Feedback feedback_b =
        workload.SimulateFeedback(obs_b, rank.ranking, &wire_rng);
    ASSERT_EQ(feedback_a.completed_index, feedback_b.completed_index);
    ASSERT_EQ(feedback_a.completed_pos, feedback_b.completed_pos);
    FeedbackResponseHead fb_resp;
    ASSERT_TRUE(actor
                    ->Feedback(obs_b.arrival_index, obs_b.worker, feedback_b,
                               &fb_resp)
                    .ok());
    ASSERT_EQ(fb_resp.accepted, 1);
    if (feedback_a.completed_index >= 0) ++completions;
  }
  EXPECT_GT(completions, 0) << "degenerate trajectory: nothing completed";

  // Identical learning state: exploration clock, replay occupancy, every
  // network parameter.
  TaskArrangementFramework* fw_a = inproc->shard(0)->framework();
  TaskArrangementFramework* fw_b = remote->shard(0)->framework();
  EXPECT_EQ(fw_a->explorer().steps(), fw_b->explorer().steps());
  EXPECT_EQ(fw_a->transitions_stored(), fw_b->transitions_stored());
  ExpectNetsIdentical(fw_a->worker_agent(), fw_b->worker_agent());
  ExpectNetsIdentical(fw_a->requester_agent(), fw_b->requester_agent());

  // The published snapshots serialize to identical bytes — and the
  // client's fetched replica re-serializes to those same bytes, so a
  // remote scoring actor holds a bit-exact copy of the learner's policy.
  const std::shared_ptr<const PolicySnapshot> snap_a =
      inproc->shard(0)->CurrentSnapshot();
  const std::shared_ptr<const PolicySnapshot> snap_b =
      remote->shard(0)->CurrentSnapshot();
  EXPECT_EQ(snap_a->version, snap_b->version);
  std::string bytes_a, bytes_b;
  ASSERT_TRUE(AppendSnapshotResponse(*snap_a, 0, &bytes_a).ok());
  ASSERT_TRUE(AppendSnapshotResponse(*snap_b, 0, &bytes_b).ok());
  EXPECT_EQ(bytes_a, bytes_b);

  ASSERT_TRUE(actor->FetchSnapshot(0).ok());
  ASSERT_NE(actor->replica(), nullptr);
  std::string replica_bytes;
  ASSERT_TRUE(AppendSnapshotResponse(*actor->replica(), 0, &replica_bytes)
                  .ok());
  EXPECT_EQ(replica_bytes, bytes_a);

  // Both services really learned every event.
  EXPECT_EQ(inproc->stats().aggregate.events_processed, kEvents);
  EXPECT_EQ(remote->stats().aggregate.events_processed, kEvents);

  // The shm upgrade is visible in the daemon's transport counters, and
  // with a minimal 4 KiB ring the 16 KiB-ish snapshot responses must have
  // streamed through backpressure rather than silently widening the ring.
  if (shm) {
    EXPECT_EQ(daemon.Stats().transport_shm_connections, 1);
    EXPECT_EQ(actor->ring_stats().ring_capacity,
              static_cast<int64_t>(kMinShmRingCapacity));
  }

  daemon.Stop();
  remote->Stop();
  inproc->Stop();
}

TEST(LoopbackEquivalenceTest, WireActorReplaysInProcessTrajectory) {
  RunLoopbackEquivalence(ActorClient::TransportOptions{});
}

/// The acceptance bar for the shared-memory transport: the same bit-match
/// over the ring pair, with a deliberately minimal ring so every frame
/// class (snapshot responses included) exercises the wrap-around path.
TEST(LoopbackEquivalenceTest, ShmActorReplaysInProcessTrajectory) {
  ActorClient::TransportOptions transport;
  transport.kind = ActorClient::TransportOptions::Kind::kShm;
  transport.ring_capacity = kMinShmRingCapacity;
  RunLoopbackEquivalence(transport);
}

}  // namespace
}  // namespace net
}  // namespace crowdrl
