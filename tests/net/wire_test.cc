// Wire-codec hardening: every message type round-trips bit-exactly, and
// malformed input — truncated, oversized, bad-magic, bad-version, trailing
// garbage, hostile counts, random fuzz — is rejected with a *typed* error
// and never crashes (the suite runs under ASan/UBSan in CI).
#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/shm_ring.h"
#include "nn/set_qnetwork.h"

namespace crowdrl {
namespace net {
namespace {

Observation MakeObservation(std::vector<std::vector<float>>* feature_store) {
  Observation obs;
  obs.time = 86400;
  obs.arrival_index = 42;
  obs.worker = 7;
  obs.worker_quality = 0.625;
  obs.worker_features = {0.25f, -1.5f, 3.0f};
  feature_store->push_back({1.0f, 0.0f, 0.5f, -0.125f});
  feature_store->push_back({});
  for (int i = 0; i < 2; ++i) {
    TaskSnapshot task;
    task.id = 100 + i;
    task.category = i;
    task.domain = 5 - i;
    task.award = 1.75 + i;
    task.deadline = 90000 + i;
    task.quality = 0.5 - 0.125 * i;
    task.features = &(*feature_store)[i];
    obs.tasks.push_back(task);
  }
  return obs;
}

void ExpectObservationsEqual(const Observation& a, const Observation& b) {
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.arrival_index, b.arrival_index);
  EXPECT_EQ(a.worker, b.worker);
  EXPECT_EQ(a.worker_quality, b.worker_quality);
  EXPECT_EQ(a.worker_features, b.worker_features);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].id, b.tasks[i].id);
    EXPECT_EQ(a.tasks[i].category, b.tasks[i].category);
    EXPECT_EQ(a.tasks[i].domain, b.tasks[i].domain);
    EXPECT_EQ(a.tasks[i].award, b.tasks[i].award);
    EXPECT_EQ(a.tasks[i].deadline, b.tasks[i].deadline);
    EXPECT_EQ(a.tasks[i].quality, b.tasks[i].quality);
    ASSERT_NE(b.tasks[i].features, nullptr);
    EXPECT_EQ(*a.tasks[i].features, *b.tasks[i].features);
  }
}

Transition MakeTransition(float salt) {
  Transition t;
  t.state = Matrix(3, 2);
  for (size_t i = 0; i < t.state.size(); ++i) {
    t.state.data()[i] = salt + static_cast<float>(i);
  }
  t.valid_n = 2;
  t.action_row = 1;
  t.reward = 1.0f + salt;
  t.target = 0.75 + salt;
  FutureStateSpec::Branch branch;
  branch.base = Matrix(3, 2);
  for (size_t i = 0; i < branch.base.size(); ++i) {
    branch.base.data()[i] = -salt - static_cast<float>(i);
  }
  branch.segments = {{3, 0.5f}, {1, 0.25f}};
  t.future.branches.push_back(std::move(branch));
  return t;
}

void ExpectTransitionsEqual(const Transition& a, const Transition& b) {
  ASSERT_EQ(a.state.rows(), b.state.rows());
  ASSERT_EQ(a.state.cols(), b.state.cols());
  EXPECT_EQ(Matrix::MaxAbsDiff(a.state, b.state), 0.0f);
  EXPECT_EQ(a.valid_n, b.valid_n);
  EXPECT_EQ(a.action_row, b.action_row);
  EXPECT_EQ(a.reward, b.reward);
  EXPECT_EQ(a.target, b.target);
  ASSERT_EQ(a.future.branches.size(), b.future.branches.size());
  for (size_t i = 0; i < a.future.branches.size(); ++i) {
    EXPECT_EQ(Matrix::MaxAbsDiff(a.future.branches[i].base,
                                 b.future.branches[i].base),
              0.0f);
    EXPECT_EQ(a.future.branches[i].segments, b.future.branches[i].segments);
  }
}

TEST(WireTest, FrameHeaderIsPackedContract) {
  EXPECT_EQ(sizeof(FrameHeader), 16u);
  FrameHeader header;
  header.type = static_cast<uint16_t>(MsgType::kRankRequest);
  EXPECT_EQ(CheckHeader(header), WireFault::kNone);
}

TEST(WireTest, CheckHeaderRejectsEachFaultDistinctly) {
  FrameHeader good;
  good.type = static_cast<uint16_t>(MsgType::kStatsRequest);
  ASSERT_EQ(CheckHeader(good), WireFault::kNone);

  FrameHeader bad_magic = good;
  bad_magic.magic = 0xDEADBEEF;
  EXPECT_EQ(CheckHeader(bad_magic), WireFault::kBadMagic);

  FrameHeader bad_version = good;
  bad_version.version = kWireVersion + 1;
  EXPECT_EQ(CheckHeader(bad_version), WireFault::kBadVersion);

  FrameHeader bad_type = good;
  bad_type.type = 0x7777;
  EXPECT_EQ(CheckHeader(bad_type), WireFault::kBadType);

  FrameHeader oversized = good;
  oversized.body_len = kMaxFrameBody + 1;
  EXPECT_EQ(CheckHeader(oversized), WireFault::kOversized);
}

TEST(WireTest, FaultStatusCarriesTypedCodes) {
  EXPECT_TRUE(FaultStatus(WireFault::kNone, "x").ok());
  EXPECT_EQ(FaultStatus(WireFault::kBadMagic, "x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultStatus(WireFault::kBadVersion, "x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(FaultStatus(WireFault::kTruncated, "x").code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(FaultStatus(WireFault::kOversized, "x").code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(FaultStatus(WireFault::kMalformed, "x").code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, RankRequestRoundTrips) {
  std::vector<std::vector<float>> store;
  const Observation obs = MakeObservation(&store);
  std::string body;
  AppendRankRequest(obs, /*record_arrival=*/true, &body);

  DecodedRankRequest decoded;
  ASSERT_TRUE(ParseRankRequest(body.data(), body.size(), &decoded).ok());
  EXPECT_TRUE(decoded.record_arrival);
  ExpectObservationsEqual(obs, decoded.obs);

  // The decoded observation owns its feature payloads: moving the decoded
  // request must keep TaskSnapshot::features pointers valid (deque-backed).
  DecodedRankRequest moved = std::move(decoded);
  ExpectObservationsEqual(obs, moved.obs);
}

TEST(WireTest, RankResponseRoundTripsAndValidatesPermutationRange) {
  std::string body;
  AppendRankResponse(9, 4, /*degraded=*/true, {2, 0, 1, 3}, &body);
  DecodedRankResponse decoded;
  ASSERT_TRUE(ParseRankResponse(body.data(), body.size(), &decoded).ok());
  EXPECT_EQ(decoded.arrival_index, 9);
  EXPECT_EQ(decoded.snapshot_version, 4u);
  EXPECT_TRUE(decoded.degraded);
  EXPECT_EQ(decoded.ranking, (std::vector<int>{2, 0, 1, 3}));

  // An out-of-range rank index is rejected as malformed, not accepted.
  std::string bad;
  AppendRankResponse(9, 4, false, {0, 17}, &bad);
  DecodedRankResponse rejected;
  const Status st = ParseRankResponse(bad.data(), bad.size(), &rejected);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, ServerMintedFeedbackRoundTrips) {
  crowdrl::Feedback feedback;
  feedback.completed_pos = 1;
  feedback.completed_index = 3;
  feedback.quality_gain = 0.375;
  std::string body;
  AppendFeedback(11, 5, feedback, &body);
  DecodedFeedback decoded;
  ASSERT_TRUE(ParseFeedback(body.data(), body.size(), &decoded).ok());
  EXPECT_EQ(decoded.arrival_index, 11);
  EXPECT_EQ(decoded.worker, 5);
  EXPECT_EQ(decoded.mode, FeedbackMode::kServerMinted);
  EXPECT_EQ(decoded.feedback.completed_pos, 1);
  EXPECT_EQ(decoded.feedback.completed_index, 3);
  EXPECT_EQ(decoded.feedback.quality_gain, 0.375);
  EXPECT_TRUE(decoded.blocks.empty());
}

TEST(WireTest, ClientTransitionsFeedbackRoundTrips) {
  crowdrl::Feedback feedback;
  feedback.completed_pos = 0;
  feedback.completed_index = 2;
  feedback.quality_gain = 1.5;
  TransitionBlocks blocks;
  blocks.worker.push_back(MakeTransition(0.5f));
  blocks.worker.push_back(MakeTransition(2.0f));
  blocks.requester.push_back(MakeTransition(-1.25f));
  std::string body;
  AppendFeedbackTransitions(21, 3, feedback, blocks, &body);

  DecodedFeedback decoded;
  ASSERT_TRUE(ParseFeedback(body.data(), body.size(), &decoded).ok());
  EXPECT_EQ(decoded.mode, FeedbackMode::kClientTransitions);
  ASSERT_EQ(decoded.blocks.worker.size(), 2u);
  ASSERT_EQ(decoded.blocks.requester.size(), 1u);
  ExpectTransitionsEqual(blocks.worker[0], decoded.blocks.worker[0]);
  ExpectTransitionsEqual(blocks.worker[1], decoded.blocks.worker[1]);
  ExpectTransitionsEqual(blocks.requester[0], decoded.blocks.requester[0]);
}

TEST(WireTest, ServerMintedFeedbackWithTransitionCountsIsMalformed) {
  crowdrl::Feedback feedback;
  std::string body;
  AppendFeedback(1, 1, feedback, &body);
  FeedbackRequestHead head;
  std::memcpy(&head, body.data(), sizeof(head));
  head.num_worker_transitions = 1;  // inconsistent with kServerMinted
  std::memcpy(&body[0], &head, sizeof(head));
  DecodedFeedback decoded;
  EXPECT_EQ(ParseFeedback(body.data(), body.size(), &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, FeedbackResponseAndSnapshotRequestRoundTrip) {
  std::string body;
  AppendFeedbackResponse(33, true, 12, &body);
  FeedbackResponseHead resp;
  ASSERT_TRUE(ParseFeedbackResponse(body.data(), body.size(), &resp).ok());
  EXPECT_EQ(resp.arrival_index, 33);
  EXPECT_EQ(resp.accepted, 1);
  EXPECT_EQ(resp.events_submitted, 12);

  body.clear();
  AppendSnapshotRequest(2, 77, &body);
  SnapshotRequestHead req;
  ASSERT_TRUE(ParseSnapshotRequest(body.data(), body.size(), &req).ok());
  EXPECT_EQ(req.shard, 2u);
  EXPECT_EQ(req.have_version, 77u);
}

TEST(WireTest, SnapshotRoundTripsNetworksBitExactly) {
  Rng rng(99);
  SetQNetworkConfig net_cfg;
  net_cfg.input_dim = 6;
  net_cfg.hidden_dim = 8;
  net_cfg.num_heads = 2;
  PolicySnapshot snapshot;
  snapshot.version = 5;
  snapshot.worker.online = std::make_shared<SetQNetwork>(net_cfg, &rng);
  snapshot.worker.target = std::make_shared<SetQNetwork>(net_cfg, &rng);
  // requester pair absent: the kWorkerBenefit objective's shape.

  std::string body;
  ASSERT_TRUE(AppendSnapshotResponse(snapshot, /*have_version=*/0, &body).ok());
  DecodedSnapshot decoded;
  ASSERT_TRUE(ParseSnapshotResponse(body.data(), body.size(), &decoded).ok());
  EXPECT_TRUE(decoded.changed);
  EXPECT_EQ(decoded.version, 5u);
  ASSERT_NE(decoded.snapshot, nullptr);
  ASSERT_NE(decoded.snapshot->worker.online, nullptr);
  ASSERT_NE(decoded.snapshot->worker.target, nullptr);
  EXPECT_EQ(decoded.snapshot->requester.online, nullptr);

  // Bit-exact replica: re-serializing the decoded snapshot reproduces the
  // original bytes.
  std::string body2;
  ASSERT_TRUE(
      AppendSnapshotResponse(*decoded.snapshot, /*have_version=*/0, &body2)
          .ok());
  EXPECT_EQ(body, body2);

  // Version-gated fetch: an up-to-date replica costs a header, no payload.
  std::string unchanged;
  ASSERT_TRUE(AppendSnapshotResponse(snapshot, /*have_version=*/5, &unchanged)
                  .ok());
  EXPECT_EQ(unchanged.size(), sizeof(SnapshotResponseHead));
  DecodedSnapshot cached;
  ASSERT_TRUE(
      ParseSnapshotResponse(unchanged.data(), unchanged.size(), &cached).ok());
  EXPECT_FALSE(cached.changed);
  EXPECT_EQ(cached.snapshot, nullptr);
}

TEST(WireTest, StatsRoundTripIncludesTransportCounters) {
  ServiceStats stats;
  stats.requests = 100;
  stats.shed = 3;
  stats.mean_batch_size = 2.5;
  stats.events_submitted = 50;
  stats.events_processed = 49;
  stats.replay_transitions = 123;
  stats.replay_bytes = 45678;
  stats.snapshot_version = 9;
  stats.rank_count = 100;
  stats.rank_latency_p99_ms = 1.25;
  stats.transport_connections = 4;
  stats.transport_connections_dropped = 1;
  stats.transport_frames_in = 200;
  stats.transport_frames_out = 200;
  stats.transport_bytes_in = 10000;
  stats.transport_bytes_out = 20000;
  stats.transport_snapshot_fetches = 6;
  stats.transport_remote_transitions = 77;

  std::string body;
  AppendStats(stats, &body);
  EXPECT_EQ(body.size(), sizeof(WireStats));
  ServiceStats decoded;
  ASSERT_TRUE(ParseStats(body.data(), body.size(), &decoded).ok());
  EXPECT_EQ(decoded.requests, 100);
  EXPECT_EQ(decoded.shed, 3);
  EXPECT_EQ(decoded.mean_batch_size, 2.5);
  EXPECT_EQ(decoded.events_submitted, 50);
  EXPECT_EQ(decoded.events_processed, 49);
  EXPECT_EQ(decoded.replay_transitions, 123);
  EXPECT_EQ(decoded.replay_bytes, 45678);
  EXPECT_EQ(decoded.snapshot_version, 9u);
  EXPECT_EQ(decoded.rank_count, 100);
  EXPECT_EQ(decoded.rank_latency_p99_ms, 1.25);
  EXPECT_EQ(decoded.transport_connections, 4);
  EXPECT_EQ(decoded.transport_connections_dropped, 1);
  EXPECT_EQ(decoded.transport_frames_in, 200);
  EXPECT_EQ(decoded.transport_frames_out, 200);
  EXPECT_EQ(decoded.transport_bytes_in, 10000);
  EXPECT_EQ(decoded.transport_bytes_out, 20000);
  EXPECT_EQ(decoded.transport_snapshot_fetches, 6);
  EXPECT_EQ(decoded.transport_remote_transitions, 77);
}

TEST(WireTest, ErrorFrameRoundTripsStatus) {
  std::string body;
  AppendError(Status::InvalidArgument("bad ranking"), &body);
  const Status decoded = ParseError(body.data(), body.size());
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(decoded.message(), "remote: bad ranking");

  // A hostile code outside the enum and an OK code both decode to a real
  // error (an error frame can never mean success).
  ErrorHead head;
  std::memcpy(&head, body.data(), sizeof(head));
  head.code = 0x7FFF;
  std::memcpy(&body[0], &head, sizeof(head));
  EXPECT_EQ(ParseError(body.data(), body.size()).code(),
            StatusCode::kInternal);
  head.code = static_cast<uint16_t>(StatusCode::kOk);
  std::memcpy(&body[0], &head, sizeof(head));
  EXPECT_FALSE(ParseError(body.data(), body.size()).ok());
}

// Every strict prefix of every valid body must be rejected cleanly — the
// systematic truncation sweep the hardening satellite asks for.
void ExpectAllPrefixesRejected(const std::string& body,
                               const std::function<Status(const void*, size_t)>&
                                   parse) {
  for (size_t len = 0; len < body.size(); ++len) {
    const Status st = parse(body.data(), len);
    EXPECT_FALSE(st.ok()) << "prefix of length " << len << " accepted";
  }
  // ...and one trailing byte makes it malformed, not silently ignored.
  std::string padded = body + '\0';
  EXPECT_FALSE(parse(padded.data(), padded.size()).ok());
}

TEST(WireTest, TruncatedAndPaddedBodiesAreRejectedForEveryMessageType) {
  std::vector<std::vector<float>> store;
  const Observation obs = MakeObservation(&store);
  std::string body;

  AppendRankRequest(obs, true, &body);
  ExpectAllPrefixesRejected(body, [](const void* d, size_t n) {
    DecodedRankRequest out;
    return ParseRankRequest(d, n, &out);
  });

  body.clear();
  AppendRankResponse(1, 2, false, {1, 0}, &body);
  ExpectAllPrefixesRejected(body, [](const void* d, size_t n) {
    DecodedRankResponse out;
    return ParseRankResponse(d, n, &out);
  });

  body.clear();
  TransitionBlocks blocks;
  blocks.worker.push_back(MakeTransition(1.0f));
  AppendFeedbackTransitions(1, 1, crowdrl::Feedback{}, blocks, &body);
  ExpectAllPrefixesRejected(body, [](const void* d, size_t n) {
    DecodedFeedback out;
    return ParseFeedback(d, n, &out);
  });

  body.clear();
  AppendFeedbackResponse(1, true, 1, &body);
  ExpectAllPrefixesRejected(body, [](const void* d, size_t n) {
    FeedbackResponseHead out;
    return ParseFeedbackResponse(d, n, &out);
  });

  body.clear();
  AppendSnapshotRequest(0, 0, &body);
  ExpectAllPrefixesRejected(body, [](const void* d, size_t n) {
    SnapshotRequestHead out;
    return ParseSnapshotRequest(d, n, &out);
  });

  body.clear();
  Rng rng(3);
  SetQNetworkConfig net_cfg;
  net_cfg.input_dim = 4;
  net_cfg.hidden_dim = 4;
  net_cfg.num_heads = 1;
  PolicySnapshot snapshot;
  snapshot.version = 1;
  snapshot.worker.online = std::make_shared<SetQNetwork>(net_cfg, &rng);
  ASSERT_TRUE(AppendSnapshotResponse(snapshot, 0, &body).ok());
  ExpectAllPrefixesRejected(body, [](const void* d, size_t n) {
    DecodedSnapshot out;
    return ParseSnapshotResponse(d, n, &out);
  });

  body.clear();
  AppendStats(ServiceStats{}, &body);
  ExpectAllPrefixesRejected(body, [](const void* d, size_t n) {
    ServiceStats out;
    return ParseStats(d, n, &out);
  });

  body.clear();
  AppendShmSetupRequest(kDefaultShmRingCapacity, &body);
  ExpectAllPrefixesRejected(body, [](const void* d, size_t n) {
    ShmSetupRequestHead out;
    return ParseShmSetupRequest(d, n, &out);
  });

  body.clear();
  AppendShmSetupResponse(kDefaultShmRingCapacity,
                         ShmSegmentBytes(kDefaultShmRingCapacity), &body);
  ExpectAllPrefixesRejected(body, [](const void* d, size_t n) {
    ShmSetupResponseHead out;
    return ParseShmSetupResponse(d, n, &out);
  });

  body.clear();
  AppendError(Status::IoError("x"), &body);
  for (size_t len = 0; len < body.size(); ++len) {
    // ParseError returns the *carried* status on success, so "rejected"
    // here means the typed wire fault, identifiable by its message prefix.
    const Status st = ParseError(body.data(), len);
    EXPECT_EQ(st.message().rfind("wire ", 0), 0u)
        << "prefix of length " << len << " decoded as a remote status";
  }
}

TEST(WireTest, HostileCountsAreRejectedBeforeAllocation) {
  // A rank request head claiming 4 billion tasks in a 30-byte body must be
  // rejected by the bound check, not by an allocation failure.
  RankRequestHead head;
  head.num_tasks = 0xFFFFFFFFu;
  std::string body(reinterpret_cast<const char*>(&head), sizeof(head));
  DecodedRankRequest decoded;
  EXPECT_EQ(ParseRankRequest(body.data(), body.size(), &decoded).code(),
            StatusCode::kOutOfRange);

  head = RankRequestHead{};
  head.num_worker_features = kMaxFeatureDim + 1;
  std::memcpy(&body[0], &head, sizeof(head));
  EXPECT_EQ(ParseRankRequest(body.data(), body.size(), &decoded).code(),
            StatusCode::kOutOfRange);

  FeedbackRequestHead fb_head;
  fb_head.mode = static_cast<uint8_t>(FeedbackMode::kClientTransitions);
  fb_head.num_worker_transitions = kMaxTransitionsPerBlock + 1;
  std::string fb_body(reinterpret_cast<const char*>(&fb_head),
                      sizeof(fb_head));
  DecodedFeedback fb;
  EXPECT_EQ(ParseFeedback(fb_body.data(), fb_body.size(), &fb).code(),
            StatusCode::kOutOfRange);

  fb_head.num_worker_transitions = 0;
  fb_head.mode = 200;  // unknown FeedbackMode
  std::memcpy(&fb_body[0], &fb_head, sizeof(fb_head));
  EXPECT_EQ(ParseFeedback(fb_body.data(), fb_body.size(), &fb).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, HostileShmGeometriesAreMalformedNotMapped) {
  // Every hostile geometry dies at the parser — before any ftruncate or
  // mmap could act on it.
  const uint64_t hostile_caps[] = {
      0,
      kMinShmRingCapacity - 1,
      kMinShmRingCapacity + 1,     // not a power of two
      kDefaultShmRingCapacity | 3,  // not a power of two
      kMaxShmRingCapacity * 2,
      ~uint64_t{0},
  };
  for (const uint64_t cap : hostile_caps) {
    ShmSetupRequestHead req{};
    req.ring_capacity = cap;
    ShmSetupRequestHead out;
    EXPECT_EQ(ParseShmSetupRequest(&req, sizeof(req), &out).code(),
              StatusCode::kInvalidArgument)
        << "capacity " << cap << " accepted";

    ShmSetupResponseHead resp{};
    resp.ring_capacity = cap;
    resp.segment_bytes = ShmSegmentBytes(kDefaultShmRingCapacity);
    ShmSetupResponseHead rout;
    EXPECT_EQ(ParseShmSetupResponse(&resp, sizeof(resp), &rout).code(),
              StatusCode::kInvalidArgument)
        << "response capacity " << cap << " accepted";
  }

  // A response whose segment size disagrees with its own capacity is a
  // lying peer, not a mapping instruction.
  ShmSetupResponseHead resp{};
  resp.ring_capacity = kDefaultShmRingCapacity;
  resp.segment_bytes = ShmSegmentBytes(kDefaultShmRingCapacity) + 4096;
  ShmSetupResponseHead out;
  EXPECT_EQ(ParseShmSetupResponse(&resp, sizeof(resp), &out).code(),
            StatusCode::kInvalidArgument);

  // The valid geometry round-trips through both heads.
  std::string body;
  AppendShmSetupRequest(kDefaultShmRingCapacity, &body);
  ShmSetupRequestHead req_out;
  ASSERT_TRUE(
      ParseShmSetupRequest(body.data(), body.size(), &req_out).ok());
  EXPECT_EQ(req_out.ring_capacity, kDefaultShmRingCapacity);
}

// Randomized frame fuzzer: arbitrary bytes and bit-flipped valid bodies
// through every parser. The assertion is survival with a clean Status —
// under ASan/UBSan this is a memory-safety proof over ~10^4 hostile inputs.
TEST(WireTest, FuzzerNeverCrashesAnyParser) {
  Rng rng(20260808);
  std::vector<std::vector<float>> store;
  const Observation obs = MakeObservation(&store);
  TransitionBlocks blocks;
  blocks.worker.push_back(MakeTransition(1.0f));

  std::vector<std::string> seeds;
  seeds.emplace_back();
  AppendRankRequest(obs, true, &seeds.back());
  seeds.emplace_back();
  AppendRankResponse(1, 1, false, {0, 1, 2}, &seeds.back());
  seeds.emplace_back();
  AppendFeedback(1, 1, crowdrl::Feedback{}, &seeds.back());
  seeds.emplace_back();
  AppendFeedbackTransitions(1, 1, crowdrl::Feedback{}, blocks, &seeds.back());
  seeds.emplace_back();
  AppendStats(ServiceStats{}, &seeds.back());
  seeds.emplace_back();
  AppendError(Status::Internal("seed"), &seeds.back());
  seeds.emplace_back();
  AppendShmSetupRequest(kDefaultShmRingCapacity, &seeds.back());
  seeds.emplace_back();
  AppendShmSetupResponse(kDefaultShmRingCapacity,
                         ShmSegmentBytes(kDefaultShmRingCapacity),
                         &seeds.back());

  const auto parse_all = [](const std::string& bytes) {
    const void* d = bytes.data();
    const size_t n = bytes.size();
    {
      DecodedRankRequest out;
      (void)ParseRankRequest(d, n, &out);
    }
    {
      DecodedRankResponse out;
      (void)ParseRankResponse(d, n, &out);
    }
    {
      DecodedFeedback out;
      (void)ParseFeedback(d, n, &out);
    }
    {
      FeedbackResponseHead out;
      (void)ParseFeedbackResponse(d, n, &out);
    }
    {
      SnapshotRequestHead out;
      (void)ParseSnapshotRequest(d, n, &out);
    }
    {
      DecodedSnapshot out;
      (void)ParseSnapshotResponse(d, n, &out);
    }
    {
      ServiceStats out;
      (void)ParseStats(d, n, &out);
    }
    {
      ShmSetupRequestHead out;
      (void)ParseShmSetupRequest(d, n, &out);
    }
    {
      ShmSetupResponseHead out;
      (void)ParseShmSetupResponse(d, n, &out);
    }
    (void)ParseError(d, n);
    if (n >= sizeof(FrameHeader)) {
      FrameHeader header;
      std::memcpy(&header, d, sizeof(header));
      (void)CheckHeader(header);
    }
  };

  for (int iter = 0; iter < 1500; ++iter) {
    std::string bytes;
    if (iter % 2 == 0) {
      // Pure noise of random length.
      const size_t len = rng.UniformInt(0, 512);
      bytes.resize(len);
      for (size_t i = 0; i < len; ++i) {
        bytes[i] = static_cast<char>(rng.UniformInt(0, 255));
      }
    } else {
      // A valid body with random mutations: flipped bytes, then a random
      // truncation or extension — the corruption a broken peer produces.
      bytes = seeds[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int>(seeds.size()) - 1))];
      const int flips = rng.UniformInt(1, 8);
      for (int f = 0; f < flips && !bytes.empty(); ++f) {
        const size_t pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int>(bytes.size()) - 1));
        bytes[pos] = static_cast<char>(rng.UniformInt(0, 255));
      }
      const int reshape = rng.UniformInt(0, 2);
      if (reshape == 1 && !bytes.empty()) {
        bytes.resize(static_cast<size_t>(
            rng.UniformInt(0, static_cast<int>(bytes.size()) - 1)));
      } else if (reshape == 2) {
        bytes.append(static_cast<size_t>(rng.UniformInt(1, 16)), '\xEE');
      }
    }
    parse_all(bytes);
  }
}

}  // namespace
}  // namespace net
}  // namespace crowdrl
