// LearnerDaemon + ActorClient over a loopback UNIX-domain socket: the full
// request/response surface (rank, both feedback modes, version-gated
// snapshot fetches, stats, shutdown), typed error frames for hostile
// bodies, and connection teardown. Runs under ASan and TSan in CI.
#include "net/learner_daemon.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/actor_client.h"
#include "net/shm_transport.h"
#include "net/socket.h"
#include "serve/workload.h"

namespace crowdrl {
namespace net {
namespace {

std::string TestSocketPath(const std::string& name) {
  return testing::TempDir() + "crowdrl_" + name + "_" +
         std::to_string(::getpid()) + ".sock";
}

ServeWorkloadConfig SmallWorkload() {
  ServeWorkloadConfig cfg;
  cfg.num_workers = 16;
  cfg.num_tasks = 24;
  cfg.pool_size = 6;
  cfg.warm_completions = 64;
  cfg.seed = 11;
  return cfg;
}

FrameworkConfig SmallFrameworkConfig() {
  FrameworkConfig cfg = FrameworkConfig::Defaults();
  cfg.worker_dqn.net.hidden_dim = 16;
  cfg.worker_dqn.net.num_heads = 2;
  cfg.worker_dqn.batch_size = 8;
  cfg.worker_dqn.replay.capacity = 256;
  cfg.requester_dqn.net.hidden_dim = 16;
  cfg.requester_dqn.net.num_heads = 2;
  cfg.requester_dqn.batch_size = 8;
  cfg.requester_dqn.replay.capacity = 256;
  cfg.predictor.max_segments = 3;
  cfg.max_failed_stored = 2;
  cfg.seed = 77;
  return cfg;
}

/// A started (workload, sharded service, daemon) stack on a loopback UDS.
struct DaemonFixture {
  explicit DaemonFixture(const std::string& name, int num_shards = 1)
      : workload(SmallWorkload()), socket_path(TestSocketPath(name)) {
    ServiceConfig service_cfg;
    service_cfg.inline_learning = true;
    service_cfg.publish_every_events = 1;
    service = ShardedArrangementService::Create(
        SmallFrameworkConfig(), &workload, workload.worker_feature_dim(),
        workload.task_feature_dim(), num_shards, service_cfg);
    service->Start();
    daemon = std::make_unique<LearnerDaemon>(service.get(), socket_path);
  }
  ~DaemonFixture() {
    daemon->Stop();
    service->Stop();
  }

  ServeWorkload workload;
  std::string socket_path;
  std::unique_ptr<ShardedArrangementService> service;
  std::unique_ptr<LearnerDaemon> daemon;
};

TEST(LearnerDaemonTest, RequiresStartedService) {
  ServeWorkload workload(SmallWorkload());
  auto service = ShardedArrangementService::Create(
      SmallFrameworkConfig(), &workload, workload.worker_feature_dim(),
      workload.task_feature_dim(), 1);
  LearnerDaemon daemon(service.get(), TestSocketPath("unstarted"));
  EXPECT_EQ(daemon.Start().code(), StatusCode::kFailedPrecondition);
}

TEST(LearnerDaemonTest, ThinActorRankFeedbackStatsLoop) {
  DaemonFixture fx("thin_actor");
  ASSERT_TRUE(fx.daemon->Start().ok());
  Result<std::unique_ptr<ActorClient>> client =
      ActorClient::Connect(fx.socket_path);
  ASSERT_TRUE(client.ok());

  constexpr int kEvents = 30;
  Rng rng(123);
  int accepted = 0;
  int completions = 0;
  for (int i = 0; i < kEvents; ++i) {
    const Observation obs = fx.workload.MakeObservation(i, &rng);
    DecodedRankResponse rank;
    ASSERT_TRUE(client.value()->Rank(obs, /*record_arrival=*/true, &rank).ok());
    EXPECT_EQ(rank.arrival_index, obs.arrival_index);
    EXPECT_FALSE(rank.degraded);
    EXPECT_GT(rank.snapshot_version, 0u);
    ASSERT_EQ(rank.ranking.size(), obs.tasks.size());

    const crowdrl::Feedback feedback =
        fx.workload.SimulateFeedback(obs, rank.ranking, &rng);
    if (feedback.completed_index >= 0) ++completions;
    FeedbackResponseHead fb_resp;
    ASSERT_TRUE(client.value()
                    ->Feedback(obs.arrival_index, obs.worker, feedback,
                               &fb_resp)
                    .ok());
    EXPECT_EQ(fb_resp.arrival_index, obs.arrival_index);
    EXPECT_EQ(fb_resp.accepted, 1);
    ++accepted;
    EXPECT_EQ(fb_resp.events_submitted, accepted);
  }
  EXPECT_GT(completions, 0) << "degenerate workload: nothing ever completed";

  // Unknown feedback (never ranked on this connection) is not accepted.
  FeedbackResponseHead unknown;
  ASSERT_TRUE(client.value()
                  ->Feedback(/*arrival_index=*/999999, 0, crowdrl::Feedback{},
                             &unknown)
                  .ok());
  EXPECT_EQ(unknown.accepted, 0);

  // Daemon-side stats: every event learned (inline mode), transport
  // counters live. Client and daemon agree on the frame/byte accounting.
  ServiceStats stats;
  ASSERT_TRUE(client.value()->FetchStats(&stats).ok());
  EXPECT_EQ(stats.requests, kEvents);
  EXPECT_EQ(stats.events_submitted, kEvents);
  EXPECT_EQ(stats.events_processed, kEvents);
  EXPECT_EQ(stats.transport_connections, 1);
  // ... +1: the stats request itself is already counted as received.
  EXPECT_EQ(stats.transport_frames_in, client.value()->frames_sent());
  EXPECT_EQ(stats.transport_bytes_in, client.value()->bytes_sent());
  EXPECT_GT(stats.snapshot_version, uint64_t{kEvents});
}

TEST(LearnerDaemonTest, SnapshotFetchesAreVersionGated) {
  DaemonFixture fx("snapshot");
  ASSERT_TRUE(fx.daemon->Start().ok());
  Result<std::unique_ptr<ActorClient>> client =
      ActorClient::Connect(fx.socket_path);
  ASSERT_TRUE(client.ok());
  ActorClient* actor = client.value().get();

  bool changed = false;
  ASSERT_TRUE(actor->FetchSnapshot(0, &changed).ok());
  EXPECT_TRUE(changed);
  ASSERT_NE(actor->replica(), nullptr);
  EXPECT_GT(actor->replica_version(), 0u);
  ASSERT_NE(actor->replica()->worker.online, nullptr);

  // Nothing learned since: the refetch is headers-only and keeps the
  // existing replica.
  const std::shared_ptr<const PolicySnapshot> before = actor->replica();
  ASSERT_TRUE(actor->FetchSnapshot(0, &changed).ok());
  EXPECT_FALSE(changed);
  EXPECT_EQ(actor->replica(), before);

  // One learned event bumps the published version; the next fetch sees it.
  Rng rng(5);
  const Observation obs = fx.workload.MakeObservation(0, &rng);
  DecodedRankResponse rank;
  ASSERT_TRUE(actor->Rank(obs, true, &rank).ok());
  FeedbackResponseHead fb_resp;
  ASSERT_TRUE(actor
                  ->Feedback(obs.arrival_index, obs.worker,
                             fx.workload.SimulateFeedback(obs, rank.ranking,
                                                          &rng),
                             &fb_resp)
                  .ok());
  ASSERT_TRUE(actor->FetchSnapshot(0, &changed).ok());
  EXPECT_TRUE(changed);
  EXPECT_GT(actor->replica_version(), before->version);

  // Fetching a shard that does not exist is a typed remote error (and is
  // rejected before the fetch counter, so only the 3 served fetches count).
  EXPECT_EQ(actor->FetchSnapshot(7).code(), StatusCode::kInvalidArgument);

  ServiceStats stats;
  ASSERT_TRUE(actor->FetchStats(&stats).ok());
  EXPECT_EQ(stats.transport_snapshot_fetches, 3);
}

TEST(LearnerDaemonTest, ScoringActorShipsTransitionsUpstream) {
  DaemonFixture fx("scoring_actor");
  ASSERT_TRUE(fx.daemon->Start().ok());
  Result<std::unique_ptr<ActorClient>> client =
      ActorClient::Connect(fx.socket_path);
  ASSERT_TRUE(client.ok());
  ActorClient* actor = client.value().get();

  // The remote actor: a local framework replica over the same (shared,
  // physically immutable) workload, scored against the fetched snapshot.
  TaskArrangementFramework local(
      SmallFrameworkConfig(), &fx.workload, fx.workload.worker_feature_dim(),
      fx.workload.task_feature_dim());
  ASSERT_TRUE(actor->FetchSnapshot(0).ok());

  constexpr int kEvents = 10;
  Rng rng(321);
  int64_t shipped = 0;
  for (int i = 0; i < kEvents; ++i) {
    const Observation obs = fx.workload.MakeObservation(i, &rng);
    local.OnArrival(obs);
    const ScoringView view = actor->replica()->View();
    const DecisionContext ctx = local.BuildDecision(obs);
    const std::vector<double> scores = local.ScoreDecision(ctx, view);
    const std::vector<int> ranking = local.RankDecision(obs, ctx, scores);
    const crowdrl::Feedback feedback =
        fx.workload.SimulateFeedback(obs, ranking, &rng);
    const TransitionBlocks blocks =
        local.MakeTransitions(obs, ctx, ranking, feedback, view);
    if (blocks.empty()) continue;
    shipped += static_cast<int64_t>(blocks.size());
    FeedbackResponseHead resp;
    ASSERT_TRUE(actor
                    ->SubmitTransitions(obs.arrival_index, obs.worker,
                                        feedback, blocks, &resp)
                    .ok());
    EXPECT_EQ(resp.accepted, 1);
    // The learner publishes as it learns: refresh the replica like a real
    // scoring actor would.
    ASSERT_TRUE(actor->FetchSnapshot(0).ok());
  }
  ASSERT_GT(shipped, 0);

  ServiceStats stats;
  ASSERT_TRUE(actor->FetchStats(&stats).ok());
  EXPECT_EQ(stats.transport_remote_transitions, shipped);
  EXPECT_GT(stats.events_processed, 0);
  EXPECT_EQ(stats.requests, 0) << "scoring actors never hit the rank queue";
  EXPECT_GT(stats.replay_transitions, 0);
}

TEST(LearnerDaemonTest, MalformedBodyGetsTypedErrorAndConnectionSurvives) {
  DaemonFixture fx("malformed");
  ASSERT_TRUE(fx.daemon->Start().ok());
  Result<FdHandle> conn = ConnectUnix(fx.socket_path);
  ASSERT_TRUE(conn.ok());

  // A rank request whose body is 3 bytes of garbage: typed error frame.
  ASSERT_TRUE(SendFrame(conn->fd(), MsgType::kRankRequest, 1, "abc").ok());
  FrameHeader header;
  std::string body;
  ASSERT_TRUE(RecvFrame(conn->fd(), &header, &body).ok());
  ASSERT_EQ(static_cast<MsgType>(header.type), MsgType::kError);
  EXPECT_EQ(header.seq, 1u);
  EXPECT_EQ(ParseError(body.data(), body.size()).code(),
            StatusCode::kOutOfRange);  // truncated

  // A response type sent as a request: rejected, connection still alive.
  ASSERT_TRUE(SendFrame(conn->fd(), MsgType::kRankResponse, 2, "").ok());
  ASSERT_TRUE(RecvFrame(conn->fd(), &header, &body).ok());
  EXPECT_EQ(static_cast<MsgType>(header.type), MsgType::kError);

  // ...and a well-formed request on the same connection still works.
  ASSERT_TRUE(SendFrame(conn->fd(), MsgType::kStatsRequest, 3, "").ok());
  ASSERT_TRUE(RecvFrame(conn->fd(), &header, &body).ok());
  EXPECT_EQ(static_cast<MsgType>(header.type), MsgType::kStatsResponse);
  EXPECT_EQ(header.seq, 3u);
}

TEST(LearnerDaemonTest, UntrustedHeaderDropsConnection) {
  DaemonFixture fx("bad_magic");
  ASSERT_TRUE(fx.daemon->Start().ok());
  Result<FdHandle> conn = ConnectUnix(fx.socket_path);
  ASSERT_TRUE(conn.ok());
  FrameHeader bad;
  bad.magic = 0;
  bad.type = static_cast<uint16_t>(MsgType::kStatsRequest);
  ASSERT_TRUE(WriteAll(conn->fd(), &bad, sizeof(bad)).ok());
  // The daemon reports the fault (best-effort) and closes; the socket
  // eventually reads EOF rather than hanging.
  FrameHeader header;
  std::string body;
  Status st = RecvFrame(conn->fd(), &header, &body);
  if (st.ok()) {
    // The error frame arrived; the next read observes the close.
    EXPECT_EQ(static_cast<MsgType>(header.type), MsgType::kError);
    st = RecvFrame(conn->fd(), &header, &body);
  }
  EXPECT_FALSE(st.ok());
}

TEST(LearnerDaemonTest, ShmUpgradeServesTheFullRequestSurface) {
  DaemonFixture fx("shm_upgrade");
  ASSERT_TRUE(fx.daemon->Start().ok());
  ActorClient::TransportOptions transport;
  transport.kind = ActorClient::TransportOptions::Kind::kShm;
  transport.ring_capacity = kMinShmRingCapacity;
  Result<std::unique_ptr<ActorClient>> client =
      ActorClient::Connect(fx.socket_path, transport);
  ASSERT_TRUE(client.ok());
  ActorClient* actor = client.value().get();
  EXPECT_STREQ(actor->transport_name(), "shm");

  Rng rng(99);
  for (int i = 0; i < 12; ++i) {
    const Observation obs = fx.workload.MakeObservation(i, &rng);
    DecodedRankResponse rank;
    ASSERT_TRUE(actor->Rank(obs, true, &rank).ok());
    FeedbackResponseHead fb_resp;
    ASSERT_TRUE(actor
                    ->Feedback(obs.arrival_index, obs.worker,
                               fx.workload.SimulateFeedback(obs, rank.ranking,
                                                            &rng),
                               &fb_resp)
                    .ok());
    ASSERT_EQ(fb_resp.accepted, 1);
  }
  // Snapshot frames are far larger than the 4 KiB ring: they stream
  // through backpressure rather than failing or widening the segment.
  ASSERT_TRUE(actor->FetchSnapshot(0).ok());
  ASSERT_NE(actor->replica(), nullptr);

  ServiceStats stats;
  ASSERT_TRUE(actor->FetchStats(&stats).ok());
  EXPECT_EQ(stats.events_processed, 12);
  EXPECT_EQ(stats.transport_shm_connections, 1);
  EXPECT_EQ(stats.transport_ring_capacity,
            static_cast<int64_t>(kMinShmRingCapacity));
  // Frame accounting is transport-blind: the daemon counted the ring
  // frames exactly as it would socket frames, plus the one bootstrap
  // kShmSetupRequest the client sent before its RPC counters existed.
  EXPECT_EQ(stats.transport_frames_in, actor->frames_sent() + 1);
  EXPECT_EQ(stats.transport_bytes_in,
            actor->bytes_sent() +
                static_cast<int64_t>(sizeof(FrameHeader) +
                                     sizeof(ShmSetupRequestHead)));
}

TEST(LearnerDaemonTest, SecondShmUpgradeIsRejectedButRingSurvives) {
  DaemonFixture fx("shm_double");
  ASSERT_TRUE(fx.daemon->Start().ok());
  Result<FdHandle> conn = ConnectUnix(fx.socket_path);
  ASSERT_TRUE(conn.ok());
  Result<std::unique_ptr<ShmTransport>> ring =
      ShmConnectClient(conn->fd(), kMinShmRingCapacity);
  ASSERT_TRUE(ring.ok());
  ShmTransport* transport = ring.value().get();

  // A second setup request arrives over the ring itself; the daemon
  // answers with a typed error frame on the ring and keeps serving.
  std::string body;
  AppendShmSetupRequest(kMinShmRingCapacity, &body);
  ASSERT_TRUE(
      transport->SendFrame(MsgType::kShmSetupRequest, 5, body).ok());
  FrameHeader header;
  std::string resp;
  ASSERT_TRUE(transport->RecvFrame(&header, &resp).ok());
  ASSERT_EQ(static_cast<MsgType>(header.type), MsgType::kError);
  EXPECT_EQ(header.seq, 5u);
  EXPECT_EQ(ParseError(resp.data(), resp.size()).code(),
            StatusCode::kFailedPrecondition);

  // The rejected upgrade did not wedge or double-count the connection.
  ASSERT_TRUE(transport->SendFrame(MsgType::kStatsRequest, 6, "").ok());
  ASSERT_TRUE(transport->RecvFrame(&header, &resp).ok());
  ASSERT_EQ(static_cast<MsgType>(header.type), MsgType::kStatsResponse);
  ServiceStats stats;
  ASSERT_TRUE(ParseStats(resp.data(), resp.size(), &stats).ok());
  EXPECT_EQ(stats.transport_shm_connections, 1);
}

TEST(LearnerDaemonTest, HostileShmCapacityGetsTypedErrorOnTheSocket) {
  DaemonFixture fx("shm_hostile");
  ASSERT_TRUE(fx.daemon->Start().ok());
  Result<FdHandle> conn = ConnectUnix(fx.socket_path);
  ASSERT_TRUE(conn.ok());

  // Non-power-of-two capacity: rejected at parse time (kMalformed ⇒
  // InvalidArgument), no segment is ever created, and the socket keeps
  // serving — the actor can retry with a sane geometry or stay on uds.
  std::string body;
  AppendShmSetupRequest(kMinShmRingCapacity + 1, &body);
  ASSERT_TRUE(SendFrame(conn->fd(), MsgType::kShmSetupRequest, 1, body).ok());
  FrameHeader header;
  std::string resp;
  ASSERT_TRUE(RecvFrame(conn->fd(), &header, &resp).ok());
  ASSERT_EQ(static_cast<MsgType>(header.type), MsgType::kError);
  EXPECT_EQ(ParseError(resp.data(), resp.size()).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(SendFrame(conn->fd(), MsgType::kStatsRequest, 2, "").ok());
  ASSERT_TRUE(RecvFrame(conn->fd(), &header, &resp).ok());
  ASSERT_EQ(static_cast<MsgType>(header.type), MsgType::kStatsResponse);
  ServiceStats stats;
  ASSERT_TRUE(ParseStats(resp.data(), resp.size(), &stats).ok());
  EXPECT_EQ(stats.transport_shm_connections, 0);
}

TEST(LearnerDaemonTest, ShutdownRequestIsObservable) {
  DaemonFixture fx("shutdown");
  ASSERT_TRUE(fx.daemon->Start().ok());
  EXPECT_FALSE(fx.daemon->shutdown_requested());
  EXPECT_FALSE(fx.daemon->WaitForShutdown(/*timeout_ms=*/10));

  Result<std::unique_ptr<ActorClient>> client =
      ActorClient::Connect(fx.socket_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->RequestShutdown().ok());
  EXPECT_TRUE(fx.daemon->shutdown_requested());
  EXPECT_TRUE(fx.daemon->WaitForShutdown(/*timeout_ms=*/1000));
}

TEST(LearnerDaemonTest, ShardedDaemonRoutesByWorker) {
  DaemonFixture fx("sharded", /*num_shards=*/2);
  ASSERT_TRUE(fx.daemon->Start().ok());
  Result<std::unique_ptr<ActorClient>> client =
      ActorClient::Connect(fx.socket_path);
  ASSERT_TRUE(client.ok());
  ActorClient* actor = client.value().get();

  Rng rng(55);
  for (int i = 0; i < 24; ++i) {
    const Observation obs = fx.workload.MakeObservation(i, &rng);
    DecodedRankResponse rank;
    ASSERT_TRUE(actor->Rank(obs, true, &rank).ok());
    FeedbackResponseHead fb_resp;
    ASSERT_TRUE(actor
                    ->Feedback(obs.arrival_index, obs.worker,
                               fx.workload.SimulateFeedback(obs, rank.ranking,
                                                            &rng),
                               &fb_resp)
                    .ok());
    ASSERT_EQ(fb_resp.accepted, 1);
  }
  // Both shards' snapshots are independently fetchable.
  ASSERT_TRUE(actor->FetchSnapshot(0).ok());
  ASSERT_TRUE(actor->FetchSnapshot(1).ok());

  // With 24 arrivals over 16 workers and a splitmix64 router, both shards
  // saw traffic (deterministic for this seed).
  const ShardedServiceStats stats = fx.service->stats();
  EXPECT_EQ(stats.aggregate.events_processed, 24);
  EXPECT_GT(stats.per_shard[0].requests, 0);
  EXPECT_GT(stats.per_shard[1].requests, 0);
}

}  // namespace
}  // namespace net
}  // namespace crowdrl
