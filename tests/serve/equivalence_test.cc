// The strongest correctness guarantee of the actor/learner split: a
// service with one actor and inline (synchronous) learning is *bit-for-bit*
// the serial framework. Both are driven through identical replay harnesses
// over the same trace; every ranking, transition, learner step and final
// network parameter must coincide exactly — any divergence in the decision
// primitives (snapshot scoring, transition minting, learner cadence) shows
// up here as a hard failure.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/harness.h"
#include "serve/serving_policy.h"
#include "tensor/matrix.h"

namespace crowdrl {
namespace {

SyntheticConfig SmallTrace() {
  SyntheticConfig cfg;
  cfg.scale = 0.05;
  cfg.eval_months = 2;
  cfg.seed = 1234;
  return cfg;
}

FrameworkConfig SmallFrameworkConfig(const ReplayHarness& harness) {
  (void)harness;
  FrameworkConfig cfg = FrameworkConfig::Defaults();
  cfg.worker_dqn.net.hidden_dim = 16;
  cfg.worker_dqn.net.num_heads = 2;
  cfg.worker_dqn.batch_size = 8;
  cfg.worker_dqn.replay.capacity = 256;
  cfg.requester_dqn.net.hidden_dim = 16;
  cfg.requester_dqn.net.num_heads = 2;
  cfg.requester_dqn.batch_size = 8;
  cfg.requester_dqn.replay.capacity = 256;
  cfg.predictor.max_segments = 3;
  cfg.max_failed_stored = 2;
  cfg.warmup_learn_steps = 20;
  cfg.seed = 77;
  return cfg;
}

void ExpectNetsIdentical(const DqnAgent* a, const DqnAgent* b) {
  ASSERT_EQ(a != nullptr, b != nullptr);
  if (a == nullptr) return;
  const auto pa = a->online().Params();
  const auto pb = b->online().Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(Matrix::MaxAbsDiff(*pa[i], *pb[i]), 0.0f)
        << "online param " << i << " diverged";
  }
  const auto ta = a->target_net().Params();
  const auto tb = b->target_net().Params();
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(Matrix::MaxAbsDiff(*ta[i], *tb[i]), 0.0f)
        << "target param " << i << " diverged";
  }
  EXPECT_EQ(a->stored(), b->stored());
  EXPECT_EQ(a->learn_steps(), b->learn_steps());
}

TEST(ServeEquivalenceTest, OneActorInlineServiceBitMatchesSerialFramework) {
  const Dataset dataset = SyntheticGenerator(SmallTrace()).Generate();
  ASSERT_TRUE(dataset.Validate().ok());
  HarnessConfig harness_cfg;
  harness_cfg.seed = 5;

  // --- serial reference ---
  ReplayHarness serial_harness(&dataset, harness_cfg);
  TaskArrangementFramework serial(
      SmallFrameworkConfig(serial_harness), &serial_harness,
      serial_harness.worker_feature_dim(), serial_harness.task_feature_dim());
  const RunResult serial_result = serial_harness.Run(&serial);

  // --- served run: same trace, same seeds, through the service ---
  ReplayHarness served_harness(&dataset, harness_cfg);
  TaskArrangementFramework served(
      SmallFrameworkConfig(served_harness), &served_harness,
      served_harness.worker_feature_dim(), served_harness.task_feature_dim());
  ServiceConfig service_cfg;
  service_cfg.inline_learning = true;
  service_cfg.publish_every_events = 1;  // snapshot == live nets, always
  ArrangementService service(&served, service_cfg);
  service.Start();
  ServingPolicy policy(&service);
  const RunResult served_result = served_harness.Run(&policy);
  service.Stop();

  // Identical trajectories ⇒ identical realized metrics, to the last bit.
  EXPECT_EQ(serial_result.arrivals_evaluated, served_result.arrivals_evaluated);
  EXPECT_EQ(serial_result.completions, served_result.completions);
  EXPECT_EQ(serial_result.final_metrics.cr, served_result.final_metrics.cr);
  EXPECT_EQ(serial_result.final_metrics.kcr, served_result.final_metrics.kcr);
  EXPECT_EQ(serial_result.final_metrics.ndcg_cr,
            served_result.final_metrics.ndcg_cr);
  EXPECT_EQ(serial_result.final_metrics.qg, served_result.final_metrics.qg);
  EXPECT_EQ(serial_result.final_metrics.kqg, served_result.final_metrics.kqg);
  EXPECT_EQ(serial_result.final_metrics.ndcg_qg,
            served_result.final_metrics.ndcg_qg);

  // Identical learning: same exploration clock, same stored transitions,
  // same gradient steps, same final parameters.
  EXPECT_EQ(serial.explorer().steps(), served.explorer().steps());
  EXPECT_EQ(serial.transitions_stored(), served.transitions_stored());
  ExpectNetsIdentical(serial.worker_agent(), served.worker_agent());
  ExpectNetsIdentical(serial.requester_agent(), served.requester_agent());

  // The served run really went through the async machinery.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, serial_result.arrivals_evaluated);
  EXPECT_EQ(stats.events_processed, stats.events_submitted);
  EXPECT_GT(stats.snapshot_version, 1u);
}

TEST(ServeEquivalenceTest, AsyncServiceMatchesTrajectoryWithSingleDriver) {
  // With a dedicated learner thread the single-driver flow is still
  // sequentially consistent (the driver blocks on Rank, and feedback
  // blocks flush in order), but snapshots may lag by the publish cadence —
  // so we assert structural invariants rather than bit equality.
  const Dataset dataset = SyntheticGenerator(SmallTrace()).Generate();
  HarnessConfig harness_cfg;
  harness_cfg.seed = 5;
  ReplayHarness harness(&dataset, harness_cfg);
  TaskArrangementFramework framework(
      SmallFrameworkConfig(harness), &harness, harness.worker_feature_dim(),
      harness.task_feature_dim());
  ServiceConfig service_cfg;
  service_cfg.flush_block_events = 2;
  service_cfg.publish_every_events = 4;
  ArrangementService service(&framework, service_cfg);
  service.Start();
  {
    ServingPolicy policy(&service);
    const RunResult result = harness.Run(&policy);
    EXPECT_GT(result.arrivals_evaluated, 0);
    policy.session()->Flush();
  }
  service.Stop();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.events_processed, stats.events_submitted);
  EXPECT_EQ(stats.blocks_dropped, 0);
  EXPECT_GT(framework.transitions_stored(), 0);
}

}  // namespace
}  // namespace crowdrl
