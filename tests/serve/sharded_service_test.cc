// The sharded service's contracts, in strength order: (1) with S = 1 the
// whole sharded stack — router, shard, inline learner, snapshot chain —
// is *bit-for-bit* the serial framework; (2) S > 1 runs are deterministic
// for a fixed seed and shard count; (3) every rank request is answered
// with a full valid permutation, including shed and post-shutdown ones,
// and the stats account for each of them; (4) feedback always reaches the
// shard that owns the worker, and cross-shard stats merge exactly.
#include "serve/sharded_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "eval/harness.h"
#include "serve/serving_policy.h"
#include "serve/workload.h"
#include "tensor/matrix.h"

namespace crowdrl {
namespace {

SyntheticConfig SmallTrace() {
  SyntheticConfig cfg;
  cfg.scale = 0.05;
  cfg.eval_months = 2;
  cfg.seed = 1234;
  return cfg;
}

FrameworkConfig SmallFrameworkConfig() {
  FrameworkConfig cfg = FrameworkConfig::Defaults();
  cfg.worker_dqn.net.hidden_dim = 16;
  cfg.worker_dqn.net.num_heads = 2;
  cfg.worker_dqn.batch_size = 8;
  cfg.worker_dqn.replay.capacity = 256;
  cfg.requester_dqn.net.hidden_dim = 16;
  cfg.requester_dqn.net.num_heads = 2;
  cfg.requester_dqn.batch_size = 8;
  cfg.requester_dqn.replay.capacity = 256;
  cfg.predictor.max_segments = 3;
  cfg.max_failed_stored = 2;
  cfg.warmup_learn_steps = 20;
  cfg.seed = 77;
  return cfg;
}

ServiceConfig InlineServiceConfig() {
  ServiceConfig cfg;
  cfg.inline_learning = true;
  cfg.publish_every_events = 1;  // snapshot == live nets, always
  return cfg;
}

void ExpectNetsIdentical(const DqnAgent* a, const DqnAgent* b) {
  ASSERT_EQ(a != nullptr, b != nullptr);
  if (a == nullptr) return;
  const auto pa = a->online().Params();
  const auto pb = b->online().Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(Matrix::MaxAbsDiff(*pa[i], *pb[i]), 0.0f)
        << "online param " << i << " diverged";
  }
  const auto ta = a->target_net().Params();
  const auto tb = b->target_net().Params();
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(Matrix::MaxAbsDiff(*ta[i], *tb[i]), 0.0f)
        << "target param " << i << " diverged";
  }
  EXPECT_EQ(a->stored(), b->stored());
  EXPECT_EQ(a->learn_steps(), b->learn_steps());
}

void ExpectRunsBitEqual(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.arrivals_evaluated, b.arrivals_evaluated);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.final_metrics.cr, b.final_metrics.cr);
  EXPECT_EQ(a.final_metrics.kcr, b.final_metrics.kcr);
  EXPECT_EQ(a.final_metrics.ndcg_cr, b.final_metrics.ndcg_cr);
  EXPECT_EQ(a.final_metrics.qg, b.final_metrics.qg);
  EXPECT_EQ(a.final_metrics.kqg, b.final_metrics.kqg);
  EXPECT_EQ(a.final_metrics.ndcg_qg, b.final_metrics.ndcg_qg);
}

// ---- (1) S = 1: the sharded stack collapses to the serial framework ----

TEST(ShardedServiceTest, OneShardInlineBitMatchesSerialFramework) {
  const Dataset dataset = SyntheticGenerator(SmallTrace()).Generate();
  ASSERT_TRUE(dataset.Validate().ok());
  HarnessConfig harness_cfg;
  harness_cfg.seed = 5;

  // Serial reference.
  ReplayHarness serial_harness(&dataset, harness_cfg);
  TaskArrangementFramework serial(
      SmallFrameworkConfig(), &serial_harness,
      serial_harness.worker_feature_dim(), serial_harness.task_feature_dim());
  const RunResult serial_result = serial_harness.Run(&serial);

  // Same trace and seeds through the full sharded stack with one shard.
  // BuildShardFrameworks keeps shard 0's config bit-identical to the base,
  // so any divergence below is the serving machinery's fault.
  ReplayHarness sharded_harness(&dataset, harness_cfg);
  ShardSet set = BuildShardFrameworks(
      SmallFrameworkConfig(), &sharded_harness,
      sharded_harness.worker_feature_dim(),
      sharded_harness.task_feature_dim(), /*num_shards=*/1);
  ShardedArrangementService service(set.Pointers(), InlineServiceConfig());
  service.Start();
  RunResult sharded_result;
  {
    ShardedServingPolicy policy(&service);
    sharded_result = sharded_harness.Run(&policy);
    policy.FlushAll();
  }
  service.Stop();

  ExpectRunsBitEqual(serial_result, sharded_result);
  TaskArrangementFramework* sharded = set.frameworks[0].get();
  EXPECT_EQ(serial.explorer().steps(), sharded->explorer().steps());
  EXPECT_EQ(serial.transitions_stored(), sharded->transitions_stored());
  ExpectNetsIdentical(serial.worker_agent(), sharded->worker_agent());
  ExpectNetsIdentical(serial.requester_agent(), sharded->requester_agent());

  // The run really went through the sharded machinery, and the aggregate
  // equals the one shard's own accounting.
  const ShardedServiceStats stats = service.stats();
  ASSERT_EQ(stats.per_shard.size(), 1u);
  EXPECT_EQ(stats.aggregate.requests, serial_result.arrivals_evaluated);
  EXPECT_EQ(stats.aggregate.requests, stats.per_shard[0].requests);
  EXPECT_EQ(stats.aggregate.shed, 0);
  EXPECT_EQ(stats.aggregate.events_processed,
            stats.aggregate.events_submitted);
}

// ---- (2) S > 1: fixed seed + shard count ⇒ reproducible run ----

TEST(ShardedServiceTest, MultiShardRunsAreDeterministic) {
  const Dataset dataset = SyntheticGenerator(SmallTrace()).Generate();
  HarnessConfig harness_cfg;
  harness_cfg.seed = 5;

  // Everything a rerun must reproduce, copied out before the run's
  // harness/env views are torn down.
  struct RunSnapshot {
    RunResult run;
    std::vector<int64_t> explorer_steps;
    std::vector<int64_t> stored;
    std::vector<std::vector<Matrix>> params;  // per shard, all nets
  };

  auto run_once = [&]() {
    ReplayHarness harness(&dataset, harness_cfg);
    ShardSet set = BuildShardFrameworks(
        SmallFrameworkConfig(), &harness, harness.worker_feature_dim(),
        harness.task_feature_dim(), /*num_shards=*/3);
    ShardedArrangementService service(set.Pointers(), InlineServiceConfig());
    service.Start();
    RunSnapshot out;
    {
      // Two rotated driver sessions: the multi-session buffer/flush path
      // must not perturb determinism either.
      ShardedServingPolicy policy(&service, /*sessions_per_driver=*/2);
      out.run = harness.Run(&policy);
      policy.FlushAll();
    }
    service.Stop();
    for (const auto& framework : set.frameworks) {
      out.explorer_steps.push_back(framework->explorer().steps());
      out.stored.push_back(framework->transitions_stored());
      std::vector<Matrix> params;
      for (const DqnAgent* agent :
           {framework->worker_agent(), framework->requester_agent()}) {
        if (agent == nullptr) continue;
        for (const Matrix* p : agent->online().Params()) params.push_back(*p);
        for (const Matrix* p : agent->target_net().Params()) {
          params.push_back(*p);
        }
      }
      out.params.push_back(std::move(params));
    }
    return out;
  };

  const RunSnapshot a = run_once();
  const RunSnapshot b = run_once();

  ExpectRunsBitEqual(a.run, b.run);
  EXPECT_EQ(a.explorer_steps, b.explorer_steps);
  EXPECT_EQ(a.stored, b.stored);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t s = 0; s < a.params.size(); ++s) {
    ASSERT_EQ(a.params[s].size(), b.params[s].size()) << "shard " << s;
    for (size_t i = 0; i < a.params[s].size(); ++i) {
      EXPECT_EQ(Matrix::MaxAbsDiff(a.params[s][i], b.params[s][i]), 0.0f)
          << "shard " << s << " param " << i << " diverged between reruns";
    }
  }
}

// ---- (4) routing: every event lands on the worker's owner shard ----

TEST(ShardedServiceTest, FeedbackReachesOwnerShardOnly) {
  const Dataset dataset = SyntheticGenerator(SmallTrace()).Generate();
  HarnessConfig harness_cfg;
  harness_cfg.seed = 5;
  ReplayHarness harness(&dataset, harness_cfg);
  ShardSet set = BuildShardFrameworks(
      SmallFrameworkConfig(), &harness, harness.worker_feature_dim(),
      harness.task_feature_dim(), /*num_shards=*/3);
  ShardedArrangementService service(set.Pointers(), InlineServiceConfig());
  service.Start();
  RunResult result;
  {
    ShardedServingPolicy policy(&service);
    result = harness.Run(&policy);
    policy.FlushAll();
  }
  service.Stop();

  const ShardedServiceStats stats = service.stats();
  ASSERT_EQ(stats.per_shard.size(), 3u);
  // The router's assignment is visible in the per-shard request counters:
  // they sum to the run's arrivals, every shard's feedback was learned by
  // its own learner, and (with this trace) no shard sat idle.
  int64_t requests = 0;
  for (size_t s = 0; s < stats.per_shard.size(); ++s) {
    const ServiceStats& shard = stats.per_shard[s];
    requests += shard.requests;
    EXPECT_EQ(shard.events_processed, shard.events_submitted)
        << "shard " << s;
    EXPECT_GT(shard.requests, 0) << "shard " << s << " never ranked";
    // A shard only stores transitions for workers it owns.
    EXPECT_EQ(set.frameworks[s]->transitions_stored() > 0,
              shard.events_submitted > 0);
  }
  EXPECT_EQ(requests, result.arrivals_evaluated);
  EXPECT_EQ(stats.aggregate.requests, requests);
  // Aggregate latency percentiles merge the raw per-shard series: the
  // merged count is the sum, and the merged max is the max of maxima.
  int64_t rank_count = 0;
  double max_ms = 0;
  for (const ServiceStats& shard : stats.per_shard) {
    rank_count += shard.rank_count;
    max_ms = std::max(max_ms, shard.rank_latency_max_ms);
  }
  EXPECT_EQ(stats.aggregate.rank_count, rank_count);
  EXPECT_DOUBLE_EQ(stats.aggregate.rank_latency_max_ms, max_ms);
}

// ---- (3) admission control: shed, counted, never silently dropped ----

std::vector<int> SortedCopy(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(ShardedServiceTest, ShedRequestsGetFallbackRankingAndAreCounted) {
  // A zero enqueue budget against a capacity-1 request queue under
  // concurrent load: some requests must find the queue full and shed.
  // Every caller still receives a full permutation, and the accounting
  // requests + shed == issued holds exactly — nothing silently dropped.
  ServeWorkloadConfig wl_cfg;
  wl_cfg.num_workers = 32;
  wl_cfg.num_tasks = 32;
  wl_cfg.pool_size = 8;
  const ServeWorkload workload(wl_cfg);

  FrameworkConfig fw_cfg = SmallFrameworkConfig();
  fw_cfg.learn_from_history = false;
  ShardSet set = BuildShardFrameworks(fw_cfg, &workload,
                                      workload.worker_feature_dim(),
                                      workload.task_feature_dim(),
                                      /*num_shards=*/1);
  ServiceConfig service_cfg;
  service_cfg.request_queue_capacity = 1;
  service_cfg.enqueue_budget_us = 0;  // shed on the first full check
  service_cfg.publish_every_events = 4;
  ShardedArrangementService service(set.Pointers(), service_cfg);
  service.Start();

  constexpr int kThreads = 4;
  std::atomic<int64_t> issued{0};
  std::atomic<int64_t> observed_shed{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> actors;
  for (int t = 0; t < kThreads; ++t) {
    actors.emplace_back([&, t] {
      Rng rng(900 + static_cast<uint64_t>(t));
      auto session = service.NewSession();
      for (int i = 0; i < 500 && !done.load(); ++i) {
        const Observation obs = workload.MakeObservation(
            issued.fetch_add(1), &rng);
        ShardedArrangementService::Ticket ticket;
        const std::vector<int> ranking = session->Rank(obs, &ticket);
        // Shed or served, the answer is a full valid permutation.
        ASSERT_EQ(ranking.size(), obs.tasks.size());
        std::vector<int> identity(obs.tasks.size());
        std::iota(identity.begin(), identity.end(), 0);
        ASSERT_EQ(SortedCopy(ranking), identity);
        // Feedback for everything, shed or not: a shed ticket carries no
        // decision context, so its feedback must be a learning no-op (the
        // decision never existed) — only served events enter the stream.
        session->Feedback(obs, ticket, ranking,
                          workload.SimulateFeedback(obs, ranking, &rng));
        if (ticket.inner.snapshot_version == 0) {
          observed_shed.fetch_add(1);
          if (observed_shed.load() >= 3) done.store(true);
        }
      }
      session->Flush();
    });
  }
  for (auto& t : actors) t.join();
  service.Stop();

  const ShardedServiceStats stats = service.stats();
  EXPECT_GT(stats.aggregate.shed, 0) << "contended capacity-1 queue with a "
                                        "zero budget never shed";
  EXPECT_EQ(stats.aggregate.shed, observed_shed.load());
  EXPECT_EQ(stats.aggregate.requests + stats.aggregate.shed, issued.load());
  EXPECT_EQ(stats.aggregate.rejected, 0);
  // Shed feedbacks never entered the learning stream.
  EXPECT_EQ(stats.aggregate.events_submitted,
            issued.load() - stats.aggregate.shed);
  EXPECT_EQ(stats.aggregate.events_processed,
            stats.aggregate.events_submitted);
}

TEST(ShardedServiceTest, PostShutdownRanksUseTaskQualityFallback) {
  // After Stop every Rank is rejected (counted separately from shed) and
  // served the configured fallback: score-policy order — tasks by current
  // quality, descending, stable ties.
  ServeWorkloadConfig wl_cfg;
  wl_cfg.num_workers = 8;
  wl_cfg.num_tasks = 16;
  wl_cfg.pool_size = 6;
  const ServeWorkload workload(wl_cfg);

  FrameworkConfig fw_cfg = SmallFrameworkConfig();
  fw_cfg.learn_from_history = false;
  ShardSet set = BuildShardFrameworks(fw_cfg, &workload,
                                      workload.worker_feature_dim(),
                                      workload.task_feature_dim(),
                                      /*num_shards=*/2);
  ServiceConfig service_cfg;
  service_cfg.shed_fallback = RankFallback::kTaskQuality;
  ShardedArrangementService service(set.Pointers(), service_cfg);
  service.Start();
  service.Stop();

  auto session = service.NewSession();
  Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    const Observation obs = workload.MakeObservation(i, &rng);
    ShardedArrangementService::Ticket ticket;
    const std::vector<int> ranking = session->Rank(obs, &ticket);
    ASSERT_EQ(ranking.size(), obs.tasks.size());
    for (size_t pos = 0; pos + 1 < ranking.size(); ++pos) {
      const double a = obs.tasks[static_cast<size_t>(ranking[pos])].quality;
      const double b =
          obs.tasks[static_cast<size_t>(ranking[pos + 1])].quality;
      EXPECT_GE(a, b) << "fallback not in descending task-quality order";
      if (a == b) {
        // Stable ties: original observation order preserved.
        EXPECT_LT(ranking[pos], ranking[pos + 1]);
      }
    }
  }
  const ShardedServiceStats stats = service.stats();
  EXPECT_EQ(stats.aggregate.rejected, 8);
  EXPECT_EQ(stats.aggregate.shed, 0);
  EXPECT_EQ(stats.aggregate.requests, 0);
}

// ---- snapshot delta-publication through the full service ----

TEST(ShardedServiceTest, DeltaPublicationSharesUnchangedNets) {
  const Dataset dataset = SyntheticGenerator(SmallTrace()).Generate();
  HarnessConfig harness_cfg;
  harness_cfg.seed = 5;

  auto run_with_delta = [&](bool delta) {
    ReplayHarness harness(&dataset, harness_cfg);
    ShardSet set = BuildShardFrameworks(
        SmallFrameworkConfig(), &harness, harness.worker_feature_dim(),
        harness.task_feature_dim(), /*num_shards=*/1);
    ServiceConfig cfg = InlineServiceConfig();
    cfg.snapshot_delta = delta;
    ShardedArrangementService service(set.Pointers(), cfg);
    service.Start();
    RunResult result;
    {
      ShardedServingPolicy policy(&service);
      result = harness.Run(&policy);
      policy.FlushAll();
    }
    service.Stop();
    struct Out {
      RunResult run;
      ServiceStats stats;
    };
    return Out{result, service.stats().aggregate};
  };

  const auto delta_on = run_with_delta(true);
  const auto delta_off = run_with_delta(false);

  // Delta-publication is a publish-cost optimization, not a behaviour
  // change: the two runs are bit-identical trajectories.
  ExpectRunsBitEqual(delta_on.run, delta_off.run);
  EXPECT_EQ(delta_on.stats.snapshot_version, delta_off.stats.snapshot_version);

  // With per-event publication most publishes happen between learner
  // steps, where no net changed — delta mode must reuse aggressively,
  // full-copy mode never does.
  EXPECT_GT(delta_on.stats.snapshot_nets_shared, 0);
  EXPECT_LT(delta_on.stats.snapshot_nets_copied,
            delta_off.stats.snapshot_nets_copied);
  EXPECT_EQ(delta_off.stats.snapshot_nets_shared, 0);
}

}  // namespace
}  // namespace crowdrl
