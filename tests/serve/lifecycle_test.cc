// Regression tests for the Start/Stop lifecycle races fixed alongside the
// thread-safety annotation retrofit:
//
//  * ServiceShard::Stop() raced itself — two concurrent Stops both saw
//    started_ == true and double-joined the batcher/learner handles
//    (std::terminate). Stop now serializes on lifecycle_mu_ and the loser
//    observes !started_.
//  * ServiceShard::Start() published started_ = true *before* assigning
//    the thread handles, so a racing Stop could join default-constructed
//    threads while the real ones were created afterwards and leaked.
//  * ShardedArrangementService had the same pattern one level up, plus a
//    plain-bool started_ read lock-free by observers.
//
// The double-Stop tests fail deterministically (abort) against the old
// code; the observer tests are primarily for the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/shard.h"
#include "serve/sharded_service.h"
#include "serve/workload.h"

namespace crowdrl {
namespace {

ServeWorkloadConfig SmallWorkloadConfig() {
  ServeWorkloadConfig cfg;
  cfg.num_workers = 8;
  cfg.num_tasks = 12;
  cfg.pool_size = 4;
  cfg.warm_completions = 16;
  cfg.seed = 7;
  return cfg;
}

FrameworkConfig SmallFrameworkConfig() {
  FrameworkConfig cfg = FrameworkConfig::Defaults();
  cfg.worker_dqn.net.hidden_dim = 16;
  cfg.worker_dqn.net.num_heads = 2;
  cfg.worker_dqn.batch_size = 4;
  cfg.worker_dqn.replay.capacity = 64;
  cfg.requester_dqn.net.hidden_dim = 16;
  cfg.requester_dqn.net.num_heads = 2;
  cfg.requester_dqn.batch_size = 4;
  cfg.requester_dqn.replay.capacity = 64;
  cfg.predictor.max_segments = 2;
  cfg.max_failed_stored = 1;
  cfg.learn_from_history = false;
  cfg.seed = 13;
  return cfg;
}

TEST(ServiceShardLifecycleTest, ConcurrentStopsJoinExactlyOnce) {
  const ServeWorkload workload(SmallWorkloadConfig());
  for (int round = 0; round < 8; ++round) {
    TaskArrangementFramework framework(SmallFrameworkConfig(), &workload,
                                       workload.worker_feature_dim(),
                                       workload.task_feature_dim());
    ServiceShard shard(&framework);
    shard.Start();
    // Serve one request so the batcher is demonstrably live mid-Stop.
    Rng rng(round);
    auto session = shard.NewSession();
    const Observation obs = workload.MakeObservation(round, &rng);
    ServiceShard::Ticket ticket;
    session->Rank(obs, &ticket);

    constexpr int kStoppers = 4;
    std::vector<std::thread> stoppers;
    for (int t = 0; t < kStoppers; ++t) {
      stoppers.emplace_back([&] { shard.Stop(); });
    }
    for (auto& t : stoppers) t.join();
    EXPECT_FALSE(shard.started());
    shard.Stop();  // still idempotent after the storm
  }
}

TEST(ServiceShardLifecycleTest, StopRacingStartJoinsRealThreads) {
  // Start publishes started_ only after both thread handles are assigned,
  // so a Stop fired immediately after (or racing) Start either runs the
  // full drain or becomes a no-op — it never joins half-constructed state.
  const ServeWorkload workload(SmallWorkloadConfig());
  for (int round = 0; round < 8; ++round) {
    TaskArrangementFramework framework(SmallFrameworkConfig(), &workload,
                                       workload.worker_feature_dim(),
                                       workload.task_feature_dim());
    ServiceShard shard(&framework);
    std::thread stopper([&] { shard.Stop(); });
    shard.Start();
    stopper.join();
    shard.Stop();
    EXPECT_FALSE(shard.started());
  }
}

TEST(ShardedServiceLifecycleTest, ConcurrentStopsDrainOnce) {
  const ServeWorkload workload(SmallWorkloadConfig());
  auto service = ShardedArrangementService::Create(
      SmallFrameworkConfig(), &workload, workload.worker_feature_dim(),
      workload.task_feature_dim(), /*num_shards=*/2);
  service->Start();
  std::atomic<bool> observed_started{false};
  // A lock-free observer reading started() while the stoppers race: the
  // atomic makes this read well-defined (plain bool before the fix).
  std::thread observer([&] {
    for (int i = 0; i < 1000; ++i) {
      if (service->started()) observed_started = true;
    }
  });
  constexpr int kStoppers = 4;
  std::vector<std::thread> stoppers;
  for (int t = 0; t < kStoppers; ++t) {
    stoppers.emplace_back([&] { service->Stop(); });
  }
  for (auto& t : stoppers) t.join();
  observer.join();
  EXPECT_FALSE(service->started());
  service->Stop();  // idempotent
}

}  // namespace
}  // namespace crowdrl
