#include "serve/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "serve/workload.h"

namespace crowdrl {
namespace {

ServeWorkloadConfig SmallWorkloadConfig() {
  ServeWorkloadConfig cfg;
  cfg.num_workers = 16;
  cfg.num_tasks = 24;
  cfg.pool_size = 6;
  cfg.warm_completions = 64;
  cfg.seed = 11;
  return cfg;
}

FrameworkConfig SmallFrameworkConfig() {
  FrameworkConfig cfg = FrameworkConfig::Defaults();
  cfg.worker_dqn.net.hidden_dim = 16;
  cfg.worker_dqn.net.num_heads = 2;
  cfg.worker_dqn.batch_size = 8;
  cfg.worker_dqn.replay.capacity = 128;
  cfg.requester_dqn.net.hidden_dim = 16;
  cfg.requester_dqn.net.num_heads = 2;
  cfg.requester_dqn.batch_size = 8;
  cfg.requester_dqn.replay.capacity = 128;
  cfg.predictor.max_segments = 2;
  cfg.max_failed_stored = 1;
  cfg.learn_from_history = false;
  cfg.seed = 21;
  return cfg;
}

bool IsPermutation(const std::vector<int>& ranking, size_t n) {
  if (ranking.size() != n) return false;
  std::vector<uint8_t> seen(n, 0);
  for (int idx : ranking) {
    if (idx < 0 || static_cast<size_t>(idx) >= n || seen[idx]) return false;
    seen[idx] = 1;
  }
  return true;
}

/// Drives `actors` concurrent sessions through `events_per_actor` full
/// rank→feedback interactions and returns the service stats after a clean
/// flush + stop.
ServiceStats DriveConcurrently(const ServeWorkload& workload,
                               ArrangementService* service, int actors,
                               int events_per_actor) {
  std::atomic<int64_t> arrival_counter{0};
  std::atomic<int> bad_rankings{0};
  std::vector<std::thread> threads;
  for (int a = 0; a < actors; ++a) {
    threads.emplace_back([&, a] {
      Rng rng(1000 + a);
      auto session = service->NewSession();
      for (int i = 0; i < events_per_actor; ++i) {
        const int64_t index = arrival_counter.fetch_add(1);
        const Observation obs = workload.MakeObservation(index, &rng);
        service->RecordArrival(obs);
        ArrangementService::Ticket ticket;
        const std::vector<int> ranking = session->Rank(obs, &ticket);
        if (!IsPermutation(ranking, obs.tasks.size())) ++bad_rankings;
        const Feedback feedback =
            workload.SimulateFeedback(obs, ranking, &rng);
        session->Feedback(obs, ticket, ranking, feedback);
      }
      EXPECT_TRUE(session->Flush());
    });
  }
  for (auto& t : threads) t.join();
  service->Stop();  // drains: every flushed block is learned
  EXPECT_EQ(bad_rankings.load(), 0);
  return service->stats();
}

TEST(ArrangementServiceTest, ServesConcurrentActorsAndLearnsEverything) {
  const ServeWorkload workload(SmallWorkloadConfig());
  TaskArrangementFramework framework(SmallFrameworkConfig(), &workload,
                                     workload.worker_feature_dim(),
                                     workload.task_feature_dim());
  ServiceConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_window_us = 200;
  cfg.flush_block_events = 3;
  cfg.publish_every_events = 4;
  ArrangementService service(&framework, cfg);
  service.Start();

  constexpr int kActors = 4;
  constexpr int kEvents = 60;
  const ServiceStats stats =
      DriveConcurrently(workload, &service, kActors, kEvents);

  EXPECT_EQ(stats.requests, kActors * kEvents);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.events_submitted, kActors * kEvents);
  // Stop() drains the learner queue: nothing flushed goes unlearned.
  EXPECT_EQ(stats.events_processed, stats.events_submitted);
  EXPECT_EQ(stats.blocks_dropped, 0);
  EXPECT_GT(stats.batches, 0);
  EXPECT_GE(stats.mean_batch_size, 1.0);
  // Learner published along the way (initial snapshot is version 1).
  EXPECT_GT(stats.snapshot_version, 1u);
  // Latency percentiles are populated and ordered.
  EXPECT_EQ(stats.rank_count, kActors * kEvents);
  EXPECT_GT(stats.rank_latency_p50_ms, 0.0);
  EXPECT_LE(stats.rank_latency_p50_ms, stats.rank_latency_p95_ms);
  EXPECT_LE(stats.rank_latency_p95_ms, stats.rank_latency_p99_ms);
  EXPECT_LE(stats.rank_latency_p99_ms, stats.rank_latency_max_ms);
  // And the framework actually trained.
  EXPECT_GT(framework.transitions_stored(), 0);
}

TEST(ArrangementServiceTest, InlineLearningProcessesSynchronously) {
  const ServeWorkload workload(SmallWorkloadConfig());
  TaskArrangementFramework framework(SmallFrameworkConfig(), &workload,
                                     workload.worker_feature_dim(),
                                     workload.task_feature_dim());
  ServiceConfig cfg;
  cfg.inline_learning = true;
  cfg.publish_every_events = 1;
  ArrangementService service(&framework, cfg);
  service.Start();

  Rng rng(5);
  auto session = service.NewSession();
  for (int i = 0; i < 10; ++i) {
    const Observation obs = workload.MakeObservation(i, &rng);
    service.RecordArrival(obs);
    ArrangementService::Ticket ticket;
    const std::vector<int> ranking = session->Rank(obs, &ticket);
    ASSERT_TRUE(IsPermutation(ranking, obs.tasks.size()));
    session->Feedback(obs, ticket,
                      ranking, workload.SimulateFeedback(obs, ranking, &rng));
    // Inline learning with block size 1: learned before Feedback returns.
    EXPECT_EQ(service.stats().events_processed, i + 1);
    // Per-event publication: initial snapshot + one per event.
    EXPECT_EQ(service.stats().snapshot_version,
              static_cast<uint64_t>(i) + 2);
  }
  session.reset();
  service.Stop();
}

TEST(ArrangementServiceTest, SnapshotVersionsAdvanceAndViewsAreConsistent) {
  const ServeWorkload workload(SmallWorkloadConfig());
  TaskArrangementFramework framework(SmallFrameworkConfig(), &workload,
                                     workload.worker_feature_dim(),
                                     workload.task_feature_dim());
  ArrangementService service(&framework);
  service.Start();
  const auto snap1 = service.CurrentSnapshot();
  EXPECT_EQ(snap1->version, 1u);
  ASSERT_TRUE(snap1->worker.has_value());
  ASSERT_TRUE(snap1->requester.has_value());

  service.PublishNow();
  const auto snap2 = service.CurrentSnapshot();
  EXPECT_EQ(snap2->version, 2u);
  // The old snapshot stays alive and unchanged for holders of the ref.
  EXPECT_EQ(snap1->version, 1u);

  const ScoringView view = snap2->View();
  EXPECT_TRUE(static_cast<bool>(view.worker));
  EXPECT_TRUE(static_cast<bool>(view.requester));
  service.Stop();
}

TEST(ArrangementServiceTest, RankAfterStopDegradesToObservationOrder) {
  const ServeWorkload workload(SmallWorkloadConfig());
  TaskArrangementFramework framework(SmallFrameworkConfig(), &workload,
                                     workload.worker_feature_dim(),
                                     workload.task_feature_dim());
  ArrangementService service(&framework);
  service.Start();
  service.Stop();

  Rng rng(9);
  auto session = service.NewSession();
  const Observation obs = workload.MakeObservation(0, &rng);
  ArrangementService::Ticket ticket;
  const std::vector<int> ranking = session->Rank(obs, &ticket);
  ASSERT_TRUE(IsPermutation(ranking, obs.tasks.size()));
  // Degraded mode returns the unpersonalized observation order.
  for (size_t i = 0; i < ranking.size(); ++i) {
    EXPECT_EQ(ranking[i], static_cast<int>(i));
  }
  EXPECT_EQ(service.stats().rejected, 1);
}

TEST(ArrangementServiceTest, EmptyPoolShortCircuits) {
  const ServeWorkload workload(SmallWorkloadConfig());
  TaskArrangementFramework framework(SmallFrameworkConfig(), &workload,
                                     workload.worker_feature_dim(),
                                     workload.task_feature_dim());
  ArrangementService service(&framework);
  service.Start();
  auto session = service.NewSession();
  Observation obs;
  obs.worker = 0;
  obs.worker_features.resize(workload.worker_feature_dim(), 0.0f);
  ArrangementService::Ticket ticket;
  EXPECT_TRUE(session->Rank(obs, &ticket).empty());
  EXPECT_EQ(service.stats().requests, 0);
  service.Stop();
}

TEST(ArrangementServiceTest, BackpressureBoundsTheLearnerQueue) {
  const ServeWorkload workload(SmallWorkloadConfig());
  TaskArrangementFramework framework(SmallFrameworkConfig(), &workload,
                                     workload.worker_feature_dim(),
                                     workload.task_feature_dim());
  ServiceConfig cfg;
  cfg.learner_queue_capacity = 2;  // tiny: actors must block, not balloon
  cfg.flush_block_events = 1;
  ArrangementService service(&framework, cfg);
  service.Start();
  const ServiceStats stats =
      DriveConcurrently(workload, &service, /*actors=*/3,
                        /*events_per_actor=*/30);
  EXPECT_EQ(stats.events_processed, stats.events_submitted);
  EXPECT_EQ(stats.blocks_dropped, 0);
}

}  // namespace
}  // namespace crowdrl
