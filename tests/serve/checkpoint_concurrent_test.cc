// Checkpointing under concurrency: SaveState/LoadState must round-trip
// while actor threads keep ranking and the learner keeps training. The
// save runs in learner context between gradient steps, so it can never
// observe a half-updated network or a torn arrival statistic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "serve/workload.h"
#include "tensor/matrix.h"

namespace crowdrl {
namespace {

ServeWorkloadConfig WorkloadConfig() {
  ServeWorkloadConfig cfg;
  cfg.num_workers = 16;
  cfg.num_tasks = 24;
  cfg.pool_size = 6;
  cfg.warm_completions = 64;
  cfg.seed = 31;
  return cfg;
}

FrameworkConfig SmallFrameworkConfig() {
  FrameworkConfig cfg = FrameworkConfig::Defaults();
  cfg.worker_dqn.net.hidden_dim = 16;
  cfg.worker_dqn.net.num_heads = 2;
  cfg.worker_dqn.batch_size = 8;
  cfg.worker_dqn.replay.capacity = 128;
  cfg.requester_dqn.net.hidden_dim = 16;
  cfg.requester_dqn.net.num_heads = 2;
  cfg.requester_dqn.batch_size = 8;
  cfg.requester_dqn.replay.capacity = 128;
  cfg.predictor.max_segments = 2;
  cfg.max_failed_stored = 1;
  cfg.learn_from_history = false;
  cfg.seed = 41;
  return cfg;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ServeCheckpointTest, SaveLoadRoundTripsWhileLearnerIsMidTraining) {
  const ServeWorkload workload(WorkloadConfig());
  TaskArrangementFramework framework(SmallFrameworkConfig(), &workload,
                                     workload.worker_feature_dim(),
                                     workload.task_feature_dim());
  ServiceConfig cfg;
  cfg.flush_block_events = 1;  // keep the learner continuously busy
  cfg.publish_every_events = 2;
  ArrangementService service(&framework, cfg);
  service.Start();

  constexpr int kActors = 3;
  constexpr int kEvents = 40;
  const std::string path = TempPath("serve_ckpt_mid_training.bin");

  std::atomic<int64_t> arrival_counter{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> actors;
  for (int a = 0; a < kActors; ++a) {
    actors.emplace_back([&, a] {
      Rng rng(500 + a);
      auto session = service.NewSession();
      for (int i = 0; i < kEvents; ++i) {
        const Observation obs =
            workload.MakeObservation(arrival_counter.fetch_add(1), &rng);
        service.RecordArrival(obs);
        ArrangementService::Ticket ticket;
        const auto ranking = session->Rank(obs, &ticket);
        session->Feedback(obs, ticket, ranking,
                          workload.SimulateFeedback(obs, ranking, &rng));
      }
      EXPECT_TRUE(session->Flush());
    });
  }
  // Checkpoint repeatedly while the pipeline is hot.
  std::thread checkpointer([&] {
    int saves = 0;
    while (!done.load() || saves == 0) {
      const Status st = service.SaveState(path);
      EXPECT_TRUE(st.ok()) << st.ToString();
      ++saves;
    }
    EXPECT_GT(saves, 0);
  });
  for (auto& t : actors) t.join();
  done = true;
  checkpointer.join();

  // Restore into the *running* service: publishes the restored parameters.
  const uint64_t version_before = service.stats().snapshot_version;
  const Status load_st = service.LoadState(path);
  EXPECT_TRUE(load_st.ok()) << load_st.ToString();
  EXPECT_GT(service.stats().snapshot_version, version_before);
  service.Stop();

  // The final checkpoint also restores into a fresh framework, and its
  // parameters match the file (round-trip fidelity).
  TaskArrangementFramework restored(SmallFrameworkConfig(), &workload,
                                    workload.worker_feature_dim(),
                                    workload.task_feature_dim());
  const Status st = restored.LoadState(path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const auto pa = framework.worker_agent()->online().Params();
  const auto pb = restored.worker_agent()->online().Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(Matrix::MaxAbsDiff(*pa[i], *pb[i]), 0.0f);
  }
  std::remove(path.c_str());
}

TEST(ServeCheckpointTest, LoadPublishesRestoredParametersToActors) {
  const ServeWorkload workload(WorkloadConfig());
  TaskArrangementFramework framework(SmallFrameworkConfig(), &workload,
                                     workload.worker_feature_dim(),
                                     workload.task_feature_dim());
  ArrangementService service(&framework);
  service.Start();

  const std::string path = TempPath("serve_ckpt_publish.bin");
  ASSERT_TRUE(service.SaveState(path).ok());

  // Train a little so live parameters drift from the checkpoint.
  Rng rng(3);
  auto session = service.NewSession();
  for (int i = 0; i < 20; ++i) {
    const Observation obs = workload.MakeObservation(i, &rng);
    service.RecordArrival(obs);
    ArrangementService::Ticket ticket;
    const auto ranking = session->Rank(obs, &ticket);
    session->Feedback(obs, ticket, ranking,
                      workload.SimulateFeedback(obs, ranking, &rng));
  }
  session->Flush();

  ASSERT_TRUE(service.LoadState(path).ok());
  // The newest snapshot now carries the restored (pre-training) nets:
  // its online parameters equal its target parameters, as after any
  // checkpoint restore (LoadState hard-syncs the target).
  const auto snap = service.CurrentSnapshot();
  ASSERT_TRUE(snap->worker.has_value());
  const auto po = snap->worker.online->Params();
  const auto pt = snap->worker.target->Params();
  for (size_t i = 0; i < po.size(); ++i) {
    EXPECT_EQ(Matrix::MaxAbsDiff(*po[i], *pt[i]), 0.0f);
  }
  session.reset();
  service.Stop();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crowdrl
