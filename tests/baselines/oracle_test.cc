#include "baselines/oracle.h"

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

struct OracleFixture {
  std::vector<Task> tasks;
  std::vector<Worker> workers;
  std::unique_ptr<Platform> platform;
  BehaviorModel behavior;
  std::vector<std::vector<float>> feats;
  Observation obs;

  OracleFixture() {
    for (int i = 0; i < 3; ++i) {
      Task t;
      t.id = i;
      t.category = i;
      t.domain = 0;
      t.award = 200;
      t.start = 0;
      t.deadline = 10000;
      tasks.push_back(t);
    }
    Worker w;
    w.id = 0;
    w.quality = 0.7;
    w.pref_category = {0.95f, 0.3f, 0.05f};  // loves cat 0
    w.pref_domain = {0.8f};
    w.award_sensitivity = 0.5;
    workers.push_back(w);
    platform = std::make_unique<Platform>(tasks, workers);

    obs.worker = 0;
    obs.worker_quality = 0.7;
    obs.worker_features.assign(4, 0.0f);
    for (int i = 0; i < 3; ++i) {
      feats.push_back(std::vector<float>(4, 0.0f));
    }
    for (int i = 0; i < 3; ++i) {
      TaskSnapshot snap;
      snap.id = i;
      snap.category = i;
      snap.features = &feats[i];
      snap.quality = 0.0;
      obs.tasks.push_back(snap);
    }
  }
};

TEST(OracleTest, RanksByTrueInterestProbability) {
  OracleFixture fx;
  OraclePolicy oracle(Objective::kWorkerBenefit, fx.platform.get(),
                      &fx.behavior, 2.0);
  auto ranking = oracle.Rank(fx.obs);
  // Preferences are monotone decreasing in category index.
  EXPECT_EQ(ranking, (std::vector<int>{0, 1, 2}));
}

TEST(OracleTest, RequesterVariantWeighsTrueGain) {
  OracleFixture fx;
  // Saturate task 0's quality so its marginal gain collapses.
  fx.obs.tasks[0].quality = 10.0;
  OraclePolicy oracle(Objective::kRequesterBenefit, fx.platform.get(),
                      &fx.behavior, 2.0);
  auto ranking = oracle.Rank(fx.obs);
  EXPECT_NE(ranking[0], 0) << "saturated task cannot lead on gain";
}

TEST(OracleTest, NameIdentifiesItAsReference) {
  OracleFixture fx;
  OraclePolicy oracle(Objective::kWorkerBenefit, fx.platform.get(),
                      &fx.behavior, 2.0);
  EXPECT_EQ(oracle.name(), "Oracle");
}

}  // namespace
}  // namespace crowdrl
