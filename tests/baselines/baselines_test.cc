#include <gtest/gtest.h>

#include "baselines/greedy_cosine.h"
#include "baselines/greedy_nn.h"
#include "baselines/linucb.h"
#include "baselines/random_policy.h"
#include "baselines/taskrec_pmf.h"

namespace crowdrl {
namespace {

/// Shared observation fixture: 2 workers × 4 tasks, 2 categories/domains.
struct Fixture {
  std::vector<std::vector<float>> task_feats;
  Observation obs;

  Fixture() {
    obs.time = 1000;
    obs.arrival_index = 0;
    obs.worker = 0;
    obs.worker_quality = 0.8;
    // Worker feature space = 2 cat + 2 dom + 2 award = 6 dims; the worker
    // historically completed category-0 tasks.
    obs.worker_features = {0.5f, 0.0f, 0.3f, 0.0f, 0.2f, 0.0f};
    for (int i = 0; i < 4; ++i) {
      task_feats.push_back(std::vector<float>(6, 0.0f));
    }
    // Task 0 matches the worker profile exactly; task 1 is orthogonal.
    task_feats[0] = {1, 0, 1, 0, 1, 0};
    task_feats[1] = {0, 1, 0, 1, 0, 1};
    task_feats[2] = {1, 0, 0, 1, 0, 1};
    task_feats[3] = {0, 1, 1, 0, 1, 0};
    for (int i = 0; i < 4; ++i) {
      TaskSnapshot snap;
      snap.id = i;
      snap.category = i % 2;
      snap.domain = i % 2;
      snap.award = 100 + i;
      snap.deadline = 100000;
      snap.features = &task_feats[i];
      snap.quality = 0.5;
      obs.tasks.push_back(snap);
    }
  }
};

TEST(RandomPolicyTest, ProducesPermutations) {
  Fixture fx;
  RandomPolicy policy(3);
  auto r1 = policy.Rank(fx.obs);
  std::vector<int> sorted = r1;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}));
  // Different calls eventually produce different orders.
  bool differs = false;
  for (int i = 0; i < 20 && !differs; ++i) {
    differs = policy.Rank(fx.obs) != r1;
  }
  EXPECT_TRUE(differs);
}

TEST(GreedyCosineTest, RanksMatchingTaskFirst) {
  Fixture fx;
  GreedyCosine policy(Objective::kWorkerBenefit, 2.0);
  auto ranking = policy.Rank(fx.obs);
  EXPECT_EQ(ranking[0], 0);        // perfect feature match
  EXPECT_EQ(ranking.back(), 1);    // orthogonal task last
}

TEST(GreedyCosineTest, RequesterObjectiveWeighsGain) {
  Fixture fx;
  // Make the orthogonal task have far lower quality (higher marginal gain
  // is impossible — gain depends only on q_t and q_w; lower q_t ⇒ higher
  // gain under Dixit–Stiglitz).
  fx.obs.tasks[0].quality = 5.0;  // saturated task: little gain left
  fx.obs.tasks[2].quality = 0.0;  // fresh task, same category as worker
  GreedyCosine policy(Objective::kRequesterBenefit, 2.0);
  auto ranking = policy.Rank(fx.obs);
  EXPECT_EQ(ranking[0], 2) << "fresh matching task should win";
}

TEST(LinUcbTest, LearnsLinearRewardSignal) {
  Fixture fx;
  LinUcbConfig cfg;
  cfg.alpha = 0.1;
  LinUcb policy(Objective::kWorkerBenefit, 6, 6, cfg);
  // Reward exactly when task 0 (feature-matching) is completed; train by
  // feeding feedback on rankings where task 0 is at various positions.
  for (int round = 0; round < 60; ++round) {
    auto ranking = policy.Rank(fx.obs);
    Feedback fb;
    // Worker "accepts" task 0 wherever it appears (cascade position).
    for (size_t pos = 0; pos < ranking.size(); ++pos) {
      if (ranking[pos] == 0) {
        fb.completed_pos = static_cast<int>(pos);
        fb.completed_index = 0;
        break;
      }
    }
    policy.OnFeedback(fx.obs, ranking, fb);
  }
  auto ranking = policy.Rank(fx.obs);
  EXPECT_EQ(ranking[0], 0) << "LinUCB should have learned the winner";
  EXPECT_GE(policy.updates(), 60);
}

TEST(LinUcbTest, UcbBonusShrinksWithObservations) {
  Fixture fx;
  LinUcbConfig cfg;
  cfg.alpha = 1.0;
  LinUcb policy(Objective::kWorkerBenefit, 6, 6, cfg);
  // Repeatedly observing *only* context 0 with zero reward shrinks its UCB
  // bonus; the never-observed arms keep their fresh-ridge bonuses and must
  // outrank it.
  std::vector<int> only_task0 = {0};
  Feedback skip_all;  // completed_pos = -1
  for (int i = 0; i < 50; ++i) {
    policy.OnFeedback(fx.obs, only_task0, skip_all);
  }
  auto after = policy.Rank(fx.obs);
  EXPECT_NE(after[0], 0) << "over-observed zero-reward arm must sink";
}

TEST(LinUcbTest, HistoryWarmStartsTheModel) {
  Fixture fx;
  LinUcb policy(Objective::kWorkerBenefit, 6, 6, LinUcbConfig{});
  for (int i = 0; i < 30; ++i) {
    // Browsed task 1 (skip), completed task 0.
    policy.OnHistory(fx.obs, {1, 0}, /*completed_pos=*/1, 0.4);
  }
  auto theta = policy.Theta();
  double norm = 0;
  for (double v : theta) norm += v * v;
  EXPECT_GT(norm, 0.0);
  // The rewarded context (task 0) must outrank the orthogonal task 1;
  // partially-overlapping unexplored tasks may still carry a larger UCB
  // bonus, so only the clean comparison is asserted.
  auto ranking = policy.Rank(fx.obs);
  int pos0 = -1, pos1 = -1;
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i] == 0) pos0 = static_cast<int>(i);
    if (ranking[i] == 1) pos1 = static_cast<int>(i);
  }
  EXPECT_LT(pos0, pos1);
}

TEST(GreedyNnTest, DailyRetrainFitsLabels) {
  Fixture fx;
  GreedyNnConfig cfg;
  cfg.hidden = {16, 8};
  cfg.epochs_per_refresh = 30;
  cfg.seed = 4;
  GreedyNn policy(Objective::kWorkerBenefit, 6, 6, cfg);

  // Before training, feed labeled feedback: task 0 completed, tasks seen
  // before it skipped.
  for (int round = 0; round < 20; ++round) {
    std::vector<int> ranking = {1, 2, 0, 3};
    Feedback fb;
    fb.completed_pos = 2;
    fb.completed_index = 0;
    policy.OnFeedback(fx.obs, ranking, fb);
  }
  EXPECT_GT(policy.buffered_rows(), 0u);
  policy.OnDayEnd(kMinutesPerDay);
  EXPECT_EQ(policy.refreshes(), 1);
  auto ranking = policy.Rank(fx.obs);
  EXPECT_EQ(ranking[0], 0) << "net should now predict task 0 best";
}

TEST(GreedyNnTest, RequesterVariantUsesQualityChannels) {
  GreedyNnConfig cfg;
  GreedyNn worker_net(Objective::kWorkerBenefit, 6, 6, cfg);
  GreedyNn requester_net(Objective::kRequesterBenefit, 6, 6, cfg);
  // The requester variant has 2 extra input dims — verify via behaviour:
  // feeding the same feedback must not abort on dimension mismatch.
  Fixture fx;
  std::vector<int> ranking = {0, 1, 2, 3};
  Feedback fb;
  fb.completed_pos = 0;
  fb.completed_index = 0;
  fb.quality_gain = 0.37;
  worker_net.OnFeedback(fx.obs, ranking, fb);
  requester_net.OnFeedback(fx.obs, ranking, fb);
  EXPECT_EQ(worker_net.buffered_rows(), 1u);
  EXPECT_EQ(requester_net.buffered_rows(), 1u);
}

TEST(TaskrecTest, LearnsWorkerTaskAffinity) {
  Fixture fx;
  TaskrecConfig cfg;
  cfg.epochs_per_refresh = 40;
  cfg.latent_dim = 8;
  TaskrecPmf policy(/*workers=*/2, /*tasks=*/4, /*categories=*/2, cfg);

  for (int round = 0; round < 25; ++round) {
    std::vector<int> ranking = {1, 0, 2, 3};
    Feedback fb;
    fb.completed_pos = 1;  // worker skips task 1, completes task 0
    fb.completed_index = 0;
    policy.OnFeedback(fx.obs, ranking, fb);
  }
  policy.OnDayEnd(kMinutesPerDay);
  auto ranking = policy.Rank(fx.obs);
  // Task 0 (always completed) must outrank task 1 (always skipped).
  int pos0 = -1, pos1 = -1;
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i] == 0) pos0 = static_cast<int>(i);
    if (ranking[i] == 1) pos1 = static_cast<int>(i);
  }
  EXPECT_LT(pos0, pos1);
}

TEST(TaskrecTest, ColdTasksInheritCategoryFactor) {
  Fixture fx;
  TaskrecConfig cfg;
  cfg.epochs_per_refresh = 40;
  TaskrecPmf policy(2, 4, 2, cfg);
  // Train only on task 0 (category 0) as positive, task 1 (category 1)
  // as negative.
  for (int round = 0; round < 30; ++round) {
    std::vector<int> ranking = {1, 0, 2, 3};
    Feedback fb;
    fb.completed_pos = 1;
    fb.completed_index = 0;
    policy.OnFeedback(fx.obs, ranking, fb);
  }
  policy.OnDayEnd(kMinutesPerDay);
  // Task 2 is category 0 (like the positive task), task 3 is category 1:
  // the never-touched task 2 should score at least as well as task 3
  // through the shared category factors.
  auto ranking = policy.Rank(fx.obs);
  int pos2 = -1, pos3 = -1;
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i] == 2) pos2 = static_cast<int>(i);
    if (ranking[i] == 3) pos3 = static_cast<int>(i);
  }
  EXPECT_LT(pos2, pos3);
}

TEST(BaselineDeathTest, BalancedObjectiveRejected) {
  EXPECT_DEATH(GreedyCosine(Objective::kBalanced, 2.0), "one side");
  EXPECT_DEATH(LinUcb(Objective::kBalanced, 4, 4, LinUcbConfig{}),
               "one side");
}

}  // namespace
}  // namespace crowdrl
