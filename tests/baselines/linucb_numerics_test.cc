// Numerical validation of LinUCB's incremental linear algebra: the
// Sherman–Morrison-maintained A⁻¹ must match a direct solve of the ridge
// system after arbitrary update sequences.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/linucb.h"
#include "common/rng.h"

namespace crowdrl {
namespace {

/// Direct Gauss–Jordan inverse (test oracle; O(d³)).
std::vector<double> InvertDense(std::vector<double> a, size_t d) {
  std::vector<double> inv(d * d, 0.0);
  for (size_t i = 0; i < d; ++i) inv[i * d + i] = 1.0;
  for (size_t col = 0; col < d; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < d; ++r) {
      if (std::fabs(a[r * d + col]) > std::fabs(a[pivot * d + col])) {
        pivot = r;
      }
    }
    for (size_t c = 0; c < d; ++c) {
      std::swap(a[col * d + c], a[pivot * d + c]);
      std::swap(inv[col * d + c], inv[pivot * d + c]);
    }
    const double diag = a[col * d + col];
    for (size_t c = 0; c < d; ++c) {
      a[col * d + c] /= diag;
      inv[col * d + c] /= diag;
    }
    for (size_t r = 0; r < d; ++r) {
      if (r == col) continue;
      const double factor = a[r * d + col];
      if (factor == 0.0) continue;
      for (size_t c = 0; c < d; ++c) {
        a[r * d + c] -= factor * a[col * d + c];
        inv[r * d + c] -= factor * inv[col * d + c];
      }
    }
  }
  return inv;
}

TEST(LinUcbNumericsTest, ThetaMatchesDirectRidgeSolve) {
  // Feed a random update stream through the policy, then rebuild
  // θ = (λI + Σ x xᵀ)⁻¹ (Σ r x) directly and compare.
  const size_t worker_dim = 3, task_dim = 3;
  LinUcbConfig cfg;
  cfg.ridge = 1.0;
  LinUcb policy(Objective::kWorkerBenefit, worker_dim, task_dim, cfg);
  const size_t d = policy.dim();

  Rng rng(17);
  std::vector<double> a(d * d, 0.0);
  for (size_t i = 0; i < d; ++i) a[i * d + i] = cfg.ridge;
  std::vector<double> b(d, 0.0);

  // Build observations with random worker/task features; update via the
  // public OnFeedback path (position 0, completed or skipped).
  for (int round = 0; round < 120; ++round) {
    Observation obs;
    obs.worker = 0;
    obs.worker_quality = 0.5;
    obs.worker_features.resize(worker_dim);
    for (auto& v : obs.worker_features) {
      v = static_cast<float>(rng.Uniform());
    }
    std::vector<float> task_features(task_dim);
    for (auto& v : task_features) v = static_cast<float>(rng.Uniform());
    TaskSnapshot snap;
    snap.id = 0;
    snap.features = &task_features;
    snap.quality = 0.3;
    obs.tasks.push_back(snap);

    const bool completed = rng.Bernoulli(0.4);
    Feedback fb;
    if (completed) {
      fb.completed_pos = 0;
      fb.completed_index = 0;
    }
    policy.OnFeedback(obs, {0}, fb);

    // Mirror the update into the dense oracle (same context layout:
    // worker ⊕ task ⊕ worker∘task).
    std::vector<double> x;
    for (float v : obs.worker_features) x.push_back(v);
    for (float v : task_features) x.push_back(v);
    for (size_t i = 0; i < std::min(worker_dim, task_dim); ++i) {
      x.push_back(static_cast<double>(obs.worker_features[i]) *
                  task_features[i]);
    }
    ASSERT_EQ(x.size(), d);
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) a[i * d + j] += x[i] * x[j];
      b[i] += (completed ? 1.0 : 0.0) * x[i];
    }
  }

  const auto a_inv = InvertDense(a, d);
  std::vector<double> theta_direct(d, 0.0);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      theta_direct[i] += a_inv[i * d + j] * b[j];
    }
  }
  const auto theta_policy = policy.Theta();
  ASSERT_EQ(theta_policy.size(), d);
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(theta_policy[i], theta_direct[i], 1e-8) << "component " << i;
  }
}

}  // namespace
}  // namespace crowdrl
