#include "core/dqn_agent.h"

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

DqnAgentConfig SmallConfig(uint64_t seed = 5) {
  DqnAgentConfig cfg;
  cfg.net.input_dim = 6;
  cfg.net.hidden_dim = 16;
  cfg.net.num_heads = 2;
  cfg.batch_size = 8;
  cfg.replay.capacity = 64;
  cfg.gamma = 0.5;
  cfg.target_sync_every = 10;
  cfg.seed = seed;
  return cfg;
}

Matrix RandomState(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  return Matrix::Uniform(n, d, &rng);
}

Transition MakeTransition(float reward, uint64_t seed,
                          bool with_future = false) {
  Transition t;
  t.state = RandomState(4, 6, seed);
  t.valid_n = 4;
  t.action_row = static_cast<int>(seed % 4);
  t.reward = reward;
  if (with_future) {
    FutureStateSpec::Branch branch;
    branch.base = RandomState(3, 6, seed ^ 0xF00D);
    branch.segments = {{3, 0.6f}, {1, 0.4f}};
    t.future.branches.push_back(std::move(branch));
  }
  return t;
}

TEST(DqnAgentTest, ScoresMatchOnlineNetwork) {
  DqnAgent agent(SmallConfig());
  Matrix state = RandomState(5, 6, 1);
  auto scores = agent.Scores(state, 5);
  auto direct = agent.online().QValues(state, 5);
  ASSERT_EQ(scores.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(scores[i], direct[i]);
}

TEST(DqnAgentTest, TargetWithoutFutureIsJustReward) {
  DqnAgent agent(SmallConfig());
  FutureStateSpec empty;
  EXPECT_DOUBLE_EQ(agent.ComputeTarget(0.5f, empty), 0.5);
  EXPECT_NEAR(agent.ComputeTarget(0.7f, empty), 0.7, 1e-6);
  EXPECT_DOUBLE_EQ(agent.ComputeFutureValue(empty), 0.0);
}

TEST(DqnAgentTest, TargetIsExpectationOverSegments) {
  DqnAgent agent(SmallConfig());
  Transition t = MakeTransition(1.0f, 3, /*with_future=*/true);
  const auto& branch = t.future.branches[0];

  // Manual double-DQN expectation.
  auto value_of = [&](size_t valid_n) {
    Matrix pool = branch.base.SliceRows(0, valid_n);
    auto online_q = agent.online().QValues(pool, valid_n);
    size_t best = std::max_element(online_q.begin(), online_q.end()) -
                  online_q.begin();
    return agent.target_net().QValues(pool, valid_n)[best];
  };
  const double expected =
      1.0 + 0.5 * (0.6 * value_of(3) + 0.4 * value_of(1));
  EXPECT_NEAR(agent.ComputeTarget(1.0f, t.future), expected, 1e-6);
}

TEST(DqnAgentTest, VanillaDqnUsesTargetMax) {
  DqnAgentConfig cfg = SmallConfig();
  cfg.double_q = false;
  DqnAgent agent(cfg);
  Transition t = MakeTransition(0.0f, 9, true);
  const auto& branch = t.future.branches[0];
  auto value_of = [&](size_t valid_n) {
    Matrix pool = branch.base.SliceRows(0, valid_n);
    auto q = agent.target_net().QValues(pool, valid_n);
    return *std::max_element(q.begin(), q.end());
  };
  const double expected = 0.5 * (0.6 * value_of(3) + 0.4 * value_of(1));
  EXPECT_NEAR(agent.ComputeTarget(0.0f, t.future), expected, 1e-6);
}

TEST(DqnAgentTest, StoreComputesTargetAndFreesFuture) {
  DqnAgent agent(SmallConfig());
  Transition t = MakeTransition(0.5f, 7, true);
  const double expected = agent.ComputeTarget(0.5f, t.future);
  agent.Store(std::move(t));
  EXPECT_EQ(agent.stored(), 1);
  EXPECT_EQ(agent.buffer_size(), 1u);
  // Future spec was released after the target was computed.
  // (Peek into the stored transition through the public path.)
  EXPECT_NEAR(expected, 0.5 + 0.5 * agent.ComputeFutureValue(
                                        MakeTransition(0, 7, true).future),
              1e-6);
}

TEST(DqnAgentTest, LearnRequiresFullBatch) {
  DqnAgent agent(SmallConfig());
  for (int i = 0; i < 7; ++i) {
    agent.Store(MakeTransition(1.0f, i));
    EXPECT_FALSE(agent.LearnStep()) << "buffer below batch size";
  }
  agent.Store(MakeTransition(1.0f, 99));
  EXPECT_TRUE(agent.LearnStep());
  EXPECT_EQ(agent.learn_steps(), 1);
}

TEST(DqnAgentTest, LearnEveryThrottlesUpdates) {
  DqnAgentConfig cfg = SmallConfig();
  cfg.learn_every = 4;
  DqnAgent agent(cfg);
  for (int i = 0; i < 8; ++i) agent.Store(MakeTransition(1.0f, i));
  int steps = 0;
  for (int i = 0; i < 8; ++i) {
    agent.Store(MakeTransition(0.0f, 100 + i));
    steps += agent.MaybeLearn();
  }
  EXPECT_EQ(steps, 2);  // every 4th store
}

TEST(DqnAgentTest, LearningDrivesQTowardTargets) {
  // All transitions share one state; reward 1 for action 0, 0 for action 1,
  // no future. Q(s,0) should end well above Q(s,1).
  DqnAgentConfig cfg = SmallConfig(11);
  cfg.opt.learning_rate = 3e-3;
  DqnAgent agent(cfg);
  Matrix state = RandomState(2, 6, 21);
  for (int i = 0; i < 32; ++i) {
    Transition t;
    t.state = state;
    t.valid_n = 2;
    t.action_row = i % 2;
    t.reward = t.action_row == 0 ? 1.0f : 0.0f;
    agent.Store(std::move(t));
  }
  for (int i = 0; i < 300; ++i) agent.LearnStep();
  auto q = agent.Scores(state, 2);
  EXPECT_GT(q[0], q[1] + 0.4) << "q0=" << q[0] << " q1=" << q[1];
  EXPECT_NEAR(q[0], 1.0, 0.35);
  EXPECT_NEAR(q[1], 0.0, 0.35);
}

TEST(DqnAgentTest, TargetNetworkSyncsPeriodically) {
  DqnAgentConfig cfg = SmallConfig(13);
  cfg.target_sync_every = 5;
  DqnAgent agent(cfg);
  Matrix probe = RandomState(3, 6, 31);
  for (int i = 0; i < 8; ++i) agent.Store(MakeTransition(1.0f, i));
  // After 4 steps the target still differs from online; after the 5th they
  // coincide.
  for (int i = 0; i < 4; ++i) agent.LearnStep();
  auto online_q = agent.online().QValues(probe, 3);
  auto target_q = agent.target_net().QValues(probe, 3);
  double diff = 0;
  for (size_t r = 0; r < 3; ++r) diff += std::fabs(online_q[r] - target_q[r]);
  EXPECT_GT(diff, 1e-7);
  agent.LearnStep();  // 5th step → sync
  online_q = agent.online().QValues(probe, 3);
  target_q = agent.target_net().QValues(probe, 3);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(online_q[r], target_q[r]);
  }
}

TEST(DqnAgentTest, LossIsFinite) {
  DqnAgent agent(SmallConfig(17));
  for (int i = 0; i < 16; ++i) {
    agent.Store(MakeTransition(static_cast<float>(i % 3), i, i % 2 == 0));
  }
  agent.LearnStep();
  EXPECT_TRUE(std::isfinite(agent.last_loss()));
  EXPECT_GE(agent.last_loss(), 0.0);
}

TEST(DqnAgentTest, RecomputeTargetsKeepsFutureSpecs) {
  DqnAgentConfig cfg = SmallConfig(19);
  cfg.recompute_targets_on_replay = true;
  DqnAgent agent(cfg);
  for (int i = 0; i < 8; ++i) {
    agent.Store(MakeTransition(1.0f, i, true));
  }
  EXPECT_TRUE(agent.LearnStep());
  EXPECT_TRUE(std::isfinite(agent.last_loss()));
}

TEST(DqnAgentTest, PackedReplayMatchesBoxedTrajectory) {
  // The packed arena is a storage-layout change only: with identical seeds
  // the whole learn trajectory (loss stream) must be bit-identical.
  DqnAgentConfig boxed_cfg = SmallConfig(17);
  DqnAgentConfig packed_cfg = SmallConfig(17);
  packed_cfg.replay_pipeline.packed = true;
  DqnAgent boxed(boxed_cfg), packed(packed_cfg);
  for (int i = 0; i < 16; ++i) {
    boxed.Store(MakeTransition(0.1f * i, i, /*with_future=*/true));
    packed.Store(MakeTransition(0.1f * i, i, /*with_future=*/true));
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(boxed.LearnStep(), packed.LearnStep());
    ASSERT_EQ(boxed.last_loss(), packed.last_loss()) << "step " << i;
  }
  EXPECT_GT(packed.replay_bytes(), 0u);
  EXPECT_GT(boxed.replay_bytes(), 0u);
}

TEST(DqnAgentTest, PipelinedReplaySmokesThroughLearnSteps) {
  DqnAgentConfig cfg = SmallConfig(19);
  cfg.replay_pipeline.pipelined = true;
  cfg.replay_pipeline.packed = true;
  DqnAgent agent(cfg);
  for (int i = 0; i < 16; ++i) {
    agent.Store(MakeTransition(0.1f * i, i, /*with_future=*/true));
  }
  int learned = 0;
  // Pipelined warm-up is asynchronous; keep polling until steps land.
  for (int i = 0; i < 10000 && learned < 25; ++i) {
    if (agent.LearnStep()) {
      ++learned;
      EXPECT_TRUE(std::isfinite(agent.last_loss()));
      EXPECT_GE(agent.last_loss(), 0.0);
    }
  }
  EXPECT_EQ(learned, 25);
  EXPECT_EQ(agent.replay_transitions(), 16u);
  EXPECT_GT(agent.replay_bytes(), 0u);
}

}  // namespace
}  // namespace crowdrl
