// Routing determinism is the sharded service's foundational invariant: a
// worker's shard must be a pure function of (worker id, shard count) —
// stable across process restarts, insertion orders and platforms — or a
// worker's feedback stream fragments across learners. These tests pin the
// hash itself (golden values), the partition properties every consumer
// relies on, and the per-shard framework-construction path.
#include "core/sharding.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <vector>

#include "serve/router.h"
#include "serve/workload.h"
#include "tensor/matrix.h"

namespace crowdrl {
namespace {

// ---- ShardOfWorker: the one partition function ----

TEST(ShardOfWorkerTest, GoldenValuesPinRestartStability) {
  // These values are the on-the-wire contract of the router: a deployment
  // that checkpoints per-shard learners and restarts must re-derive the
  // exact same worker→shard map. Any change to the hash (seed salt,
  // mixing constants, modulus) is a breaking migration and must fail here.
  const int kGoldenS4[12] = {3, 2, 3, 0, 3, 0, 1, 2, 1, 1, 0, 2};
  const int kGoldenS8[12] = {7, 2, 3, 0, 7, 4, 1, 6, 1, 5, 4, 6};
  for (WorkerId w = 0; w < 12; ++w) {
    EXPECT_EQ(ShardOfWorker(w, 4), kGoldenS4[w]) << "worker " << w;
    EXPECT_EQ(ShardOfWorker(w, 8), kGoldenS8[w]) << "worker " << w;
  }
  EXPECT_EQ(ShardOfWorker(1000, 4), 2);
  EXPECT_EQ(ShardOfWorker(65535, 4), 3);
  EXPECT_EQ(ShardOfWorker(123456, 4), 1);
  EXPECT_EQ(ShardOfWorker(2147483647, 4), 2);
}

TEST(ShardOfWorkerTest, SingleShardOwnsEveryWorker) {
  for (WorkerId w : {WorkerId{0}, WorkerId{1}, WorkerId{12345}}) {
    EXPECT_EQ(ShardOfWorker(w, 1), 0);
  }
}

TEST(ShardOfWorkerTest, RangeAndPurity) {
  for (int num_shards : {1, 2, 3, 5, 8}) {
    for (WorkerId w = 0; w < 500; ++w) {
      const int shard = ShardOfWorker(w, num_shards);
      ASSERT_GE(shard, 0);
      ASSERT_LT(shard, num_shards);
      // Pure: asking twice is the same as asking once.
      ASSERT_EQ(ShardOfWorker(w, num_shards), shard);
    }
  }
}

TEST(ShardOfWorkerTest, RoughlyUniformOverShards) {
  // 10k sequential ids over 4 shards: each shard should own about 2500.
  // Loose bounds — the property defended is "no shard is starved or
  // doubly loaded by id structure", not an exact distribution.
  constexpr int kWorkers = 10000;
  constexpr int kShards = 4;
  std::vector<int> owned(kShards, 0);
  for (WorkerId w = 0; w < kWorkers; ++w) ++owned[ShardOfWorker(w, kShards)];
  for (int s = 0; s < kShards; ++s) {
    EXPECT_GT(owned[s], kWorkers / kShards / 2) << "shard " << s << " starved";
    EXPECT_LT(owned[s], kWorkers / kShards * 2) << "shard " << s << " hot";
  }
}

// ---- Router strategies ----

TEST(WorkerRouterTest, HashRouterAgreesWithShardOfWorker) {
  // The serving router and the shard env views must agree on ownership by
  // construction — they are the same function.
  const HashWorkerRouter router;
  for (size_t num_shards : {size_t{1}, size_t{3}, size_t{7}}) {
    for (WorkerId w = 0; w < 300; ++w) {
      EXPECT_EQ(router.Route(w, num_shards),
                static_cast<size_t>(
                    ShardOfWorker(w, static_cast<int>(num_shards))));
    }
  }
}

TEST(WorkerRouterTest, RoutingIsInsensitiveToInsertionOrder) {
  // Build the worker→shard map by querying ids in three different orders
  // (ascending, descending, shuffled): a router with any history- or
  // load-dependence would diverge between the passes.
  const HashWorkerRouter router;
  constexpr size_t kShards = 5;
  std::vector<WorkerId> ids(1000);
  for (WorkerId w = 0; w < 1000; ++w) ids[static_cast<size_t>(w)] = w;

  std::map<WorkerId, size_t> ascending;
  for (WorkerId w : ids) ascending[w] = router.Route(w, kShards);

  std::map<WorkerId, size_t> descending;
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    descending[*it] = router.Route(*it, kShards);
  }

  std::mt19937 shuffle_rng(42);
  std::shuffle(ids.begin(), ids.end(), shuffle_rng);
  std::map<WorkerId, size_t> shuffled;
  for (WorkerId w : ids) shuffled[w] = router.Route(w, kShards);

  EXPECT_EQ(ascending, descending);
  EXPECT_EQ(ascending, shuffled);
}

TEST(WorkerRouterTest, ModuloRouterStripesSequentialIds) {
  const ModuloWorkerRouter router;
  for (WorkerId w = 0; w < 64; ++w) {
    EXPECT_EQ(router.Route(w, 4), static_cast<size_t>(w) % 4);
  }
}

// ---- ShardFrameworkConfig: per-shard configuration derivation ----

TEST(ShardFrameworkConfigTest, ShardZeroKeepsBaseConfigBitForBit) {
  // The S = 1 deployment must build exactly the serial framework — the
  // sharded↔serial equivalence tests stand on this.
  FrameworkConfig base = FrameworkConfig::Defaults();
  base.seed = 424242;
  for (int num_shards : {1, 2, 8}) {
    const FrameworkConfig derived =
        ShardFrameworkConfig(base, ShardSpec{0, num_shards});
    EXPECT_EQ(derived.seed, base.seed);
    EXPECT_EQ(derived.worker_dqn.seed, base.worker_dqn.seed);
    EXPECT_EQ(derived.requester_dqn.seed, base.requester_dqn.seed);
  }
}

TEST(ShardFrameworkConfigTest, NonZeroShardsGetDecorrelatedSeedStreams) {
  FrameworkConfig base = FrameworkConfig::Defaults();
  constexpr int kShards = 4;
  std::vector<uint64_t> seeds;
  for (int s = 0; s < kShards; ++s) {
    const FrameworkConfig derived =
        ShardFrameworkConfig(base, ShardSpec{s, kShards});
    if (s > 0) {
      EXPECT_NE(derived.seed, base.seed) << "shard " << s;
      EXPECT_NE(derived.worker_dqn.seed, base.worker_dqn.seed)
          << "shard " << s;
      EXPECT_NE(derived.requester_dqn.seed, base.requester_dqn.seed)
          << "shard " << s;
    }
    seeds.push_back(derived.seed);
  }
  // Pairwise distinct: shards must not accidentally share a stream.
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(ShardFrameworkConfigTest, DerivationIsDeterministic) {
  FrameworkConfig base = FrameworkConfig::Defaults();
  base.seed = 7;
  for (int s = 0; s < 3; ++s) {
    const FrameworkConfig a = ShardFrameworkConfig(base, ShardSpec{s, 3});
    const FrameworkConfig b = ShardFrameworkConfig(base, ShardSpec{s, 3});
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.worker_dqn.seed, b.worker_dqn.seed);
    EXPECT_EQ(a.requester_dqn.seed, b.requester_dqn.seed);
  }
}

// ---- ShardEnvView: the partitioned window onto shared state ----

TEST(ShardEnvViewTest, DelegatesSharedStateAndReportsOwnership) {
  ServeWorkloadConfig wl_cfg;
  wl_cfg.num_workers = 16;
  wl_cfg.num_tasks = 16;
  const ServeWorkload base(wl_cfg);

  const ShardSpec spec{1, 3};
  const ShardEnvView view(&base, spec);
  EXPECT_EQ(view.base(), &base);
  EXPECT_EQ(view.spec().shard, 1);
  EXPECT_EQ(view.spec().num_shards, 3);

  // Tasks, qualities and the clock are deployment-wide — pure delegation.
  EXPECT_EQ(view.now(), base.now());
  EXPECT_EQ(&view.features(), &base.features());
  for (WorkerId w = 0; w < wl_cfg.num_workers; ++w) {
    EXPECT_EQ(view.WorkerQuality(w), base.WorkerQuality(w));
  }
  for (TaskId t = 0; t < wl_cfg.num_tasks; ++t) {
    EXPECT_EQ(view.TaskQuality(t), base.TaskQuality(t));
  }

  // Ownership is the partition function, nothing else.
  for (WorkerId w = 0; w < 200; ++w) {
    EXPECT_EQ(view.Owns(w), ShardOfWorker(w, 3) == 1);
  }
}

TEST(ShardEnvViewTest, EveryWorkerOwnedByExactlyOneShard) {
  ServeWorkloadConfig wl_cfg;
  wl_cfg.num_workers = 8;
  wl_cfg.num_tasks = 8;
  wl_cfg.pool_size = 4;
  const ServeWorkload base(wl_cfg);

  constexpr int kShards = 4;
  std::vector<std::unique_ptr<ShardEnvView>> views;
  for (int s = 0; s < kShards; ++s) {
    views.push_back(
        std::make_unique<ShardEnvView>(&base, ShardSpec{s, kShards}));
  }
  for (WorkerId w = 0; w < 1000; ++w) {
    int owners = 0;
    for (const auto& view : views) owners += view->Owns(w) ? 1 : 0;
    ASSERT_EQ(owners, 1) << "worker " << w;
  }
}

// ---- BuildShardFrameworks: the fleet-construction path ----

TEST(BuildShardFrameworksTest, BuildsOneFrameworkPerShardOverSharedEnv) {
  ServeWorkloadConfig wl_cfg;
  wl_cfg.num_workers = 8;
  wl_cfg.num_tasks = 8;
  wl_cfg.pool_size = 4;
  const ServeWorkload env(wl_cfg);

  FrameworkConfig base = FrameworkConfig::Defaults();
  base.worker_dqn.net.hidden_dim = 8;
  base.worker_dqn.net.num_heads = 2;
  base.requester_dqn.net.hidden_dim = 8;
  base.requester_dqn.net.num_heads = 2;

  constexpr int kShards = 3;
  const ShardSet set =
      BuildShardFrameworks(base, &env, env.worker_feature_dim(),
                           env.task_feature_dim(), kShards);
  ASSERT_EQ(set.size(), static_cast<size_t>(kShards));
  ASSERT_EQ(set.views.size(), static_cast<size_t>(kShards));
  const std::vector<TaskArrangementFramework*> pointers = set.Pointers();
  ASSERT_EQ(pointers.size(), static_cast<size_t>(kShards));
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(pointers[s], set.frameworks[static_cast<size_t>(s)].get());
    EXPECT_EQ(set.views[static_cast<size_t>(s)]->spec().shard, s);
    EXPECT_EQ(set.views[static_cast<size_t>(s)]->spec().num_shards, kShards);
    EXPECT_EQ(set.views[static_cast<size_t>(s)]->base(), &env);
  }

  // Decorrelated initializations: shard 1's networks must not replicate
  // shard 0's (distinct seed streams reach the parameter init).
  const auto p0 = pointers[0]->worker_agent()->online().Params();
  const auto p1 = pointers[1]->worker_agent()->online().Params();
  ASSERT_EQ(p0.size(), p1.size());
  bool any_diff = false;
  for (size_t i = 0; i < p0.size() && !any_diff; ++i) {
    any_diff = Matrix::MaxAbsDiff(*p0[i], *p1[i]) > 0.0f;
  }
  EXPECT_TRUE(any_diff) << "shard 0 and 1 initialized identical networks";
}

}  // namespace
}  // namespace crowdrl
