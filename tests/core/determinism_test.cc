// Bit-level reproducibility guarantees: identically-seeded RNG streams are
// identical, and a short DQN training run is bit-for-bit reproducible across
// two invocations with the same seed (including the multi-threaded learner,
// whose per-chunk gradients are reduced in a fixed order).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/dqn_agent.h"

namespace crowdrl {
namespace {

TEST(DeterminismTest, IdenticallySeededRngStreamsMatch) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64()) << "draw " << i;
  }
  // Mixed-distribution draws consume state identically too.
  Rng c(7), d(7);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(c.Uniform(), d.Uniform());
    ASSERT_EQ(c.Normal(), d.Normal());
    ASSERT_EQ(c.UniformInt(1000), d.UniformInt(1000));
    ASSERT_EQ(c.Poisson(3.5), d.Poisson(3.5));
  }
}

TEST(DeterminismTest, ForkedStreamsAreReproducibleAndIndependent) {
  Rng parent1(99), parent2(99);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child1.NextU64(), child2.NextU64());
  }
  // The fork consumed exactly one parent draw, so parents stay in lockstep.
  ASSERT_EQ(parent1.NextU64(), parent2.NextU64());
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_EQ(equal, 0);
}

DqnAgentConfig TrainingConfig() {
  DqnAgentConfig cfg;
  cfg.net.input_dim = 6;
  cfg.net.hidden_dim = 16;
  cfg.net.num_heads = 2;
  cfg.batch_size = 8;
  cfg.replay.capacity = 64;
  cfg.gamma = 0.5;
  cfg.target_sync_every = 7;
  cfg.seed = 321;
  return cfg;
}

// Stores `n` transitions drawn from `seed` and runs `steps` learner steps.
// Heap-allocated: DqnAgent is pinned in place by its replay pipeline.
std::unique_ptr<DqnAgent> TrainOnce(int n, int steps, uint64_t seed) {
  auto agent_ptr = std::make_unique<DqnAgent>(TrainingConfig());
  DqnAgent& agent = *agent_ptr;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Transition t;
    t.state = Matrix::Uniform(4, 6, &rng);
    t.valid_n = 4;
    t.action_row = static_cast<int>(rng.UniformInt(4));
    t.reward = static_cast<float>(rng.Uniform());
    if (i % 3 == 0) {
      FutureStateSpec::Branch branch;
      branch.base = Matrix::Uniform(3, 6, &rng);
      branch.segments = {{3, 0.7f}, {1, 0.3f}};
      t.future.branches.push_back(std::move(branch));
    }
    agent.Store(std::move(t));
  }
  for (int i = 0; i < steps; ++i) agent.LearnStep();
  return agent_ptr;
}

void ExpectBitIdentical(const SetQNetwork& x, const SetQNetwork& y) {
  auto px = x.Params();
  auto py = y.Params();
  ASSERT_EQ(px.size(), py.size());
  for (size_t i = 0; i < px.size(); ++i) {
    ASSERT_EQ(px[i]->rows(), py[i]->rows());
    ASSERT_EQ(px[i]->cols(), py[i]->cols());
    EXPECT_EQ(std::memcmp(px[i]->data(), py[i]->data(),
                          px[i]->size() * sizeof(float)),
              0)
        << "parameter matrix " << i << " differs";
  }
}

TEST(DeterminismTest, DqnTrainingIsBitReproducible) {
  auto first = TrainOnce(24, 30, 2024);
  auto second = TrainOnce(24, 30, 2024);
  ASSERT_EQ(first->learn_steps(), second->learn_steps());
  ASSERT_GT(first->learn_steps(), 0);
  EXPECT_EQ(first->last_loss(), second->last_loss());
  ExpectBitIdentical(first->online(), second->online());
  ExpectBitIdentical(first->target_net(), second->target_net());

  // Bit-identical weights imply bit-identical decisions on a fresh state.
  Rng probe_rng(55);
  Matrix probe = Matrix::Uniform(5, 6, &probe_rng);
  auto q1 = first->Scores(probe, 5);
  auto q2 = second->Scores(probe, 5);
  ASSERT_EQ(q1.size(), q2.size());
  for (size_t i = 0; i < q1.size(); ++i) EXPECT_EQ(q1[i], q2[i]);
}

TEST(DeterminismTest, DqnTrainingDependsOnSeed) {
  auto first = TrainOnce(24, 10, 1);
  auto second = TrainOnce(24, 10, 2);
  Rng probe_rng(55);
  Matrix probe = Matrix::Uniform(5, 6, &probe_rng);
  auto q1 = first->Scores(probe, 5);
  auto q2 = second->Scores(probe, 5);
  bool any_diff = false;
  for (size_t i = 0; i < q1.size(); ++i) any_diff |= (q1[i] != q2[i]);
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace crowdrl
