#include "core/framework.h"

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

/// A self-contained environment fixture: a FeatureBuilder with a few tasks
/// and workers plus an EnvView over it.
class FixtureEnv : public EnvView {
 public:
  FixtureEnv()
      : fb_([] {
          FeatureConfig cfg;
          cfg.num_categories = 3;
          cfg.num_domains = 2;
          cfg.award_buckets = 2;
          return cfg;
        }(), /*num_workers=*/6, /*num_tasks=*/12) {
    for (int i = 0; i < 12; ++i) {
      Task t;
      t.id = i;
      t.category = i % 3;
      t.domain = i % 2;
      t.award = 100.0 + i * 30;
      tasks_.push_back(t);
    }
  }

  const FeatureBuilder& features() const override { return fb_; }
  double WorkerQuality(WorkerId) const override { return 0.6; }
  double TaskQuality(TaskId id) const override {
    return task_quality_.count(id) ? task_quality_.at(id) : 0.0;
  }
  SimTime now() const override { return now_; }

  Observation MakeObservation(WorkerId worker, int64_t arrival_index,
                              std::vector<int> task_ids, SimTime time) {
    now_ = time;
    Observation obs;
    obs.time = time;
    obs.arrival_index = arrival_index;
    obs.worker = worker;
    obs.worker_quality = 0.6;
    obs.worker_features = fb_.WorkerFeature(worker, time);
    for (int id : task_ids) {
      TaskSnapshot snap;
      snap.id = id;
      snap.category = tasks_[id].category;
      snap.domain = tasks_[id].domain;
      snap.award = tasks_[id].award;
      snap.deadline = time + 5000 + 1000 * id;
      snap.features = &fb_.TaskFeature(tasks_[id]);
      snap.quality = TaskQuality(id);
      obs.tasks.push_back(snap);
    }
    return obs;
  }

  void ApplyCompletion(WorkerId worker, TaskId task, SimTime time,
                       double gain) {
    fb_.RecordCompletion(worker, tasks_[task], time);
    task_quality_[task] += gain;
  }

  FeatureBuilder fb_;
  std::vector<Task> tasks_;
  std::map<TaskId, double> task_quality_;
  SimTime now_ = 0;
};

FrameworkConfig SmallFrameworkConfig(Objective objective) {
  FrameworkConfig cfg = FrameworkConfig::Defaults();
  cfg.objective = objective;
  cfg.worker_dqn.net.hidden_dim = 16;
  cfg.worker_dqn.net.num_heads = 2;
  cfg.worker_dqn.batch_size = 4;
  cfg.worker_dqn.replay.capacity = 64;
  cfg.requester_dqn.net.hidden_dim = 16;
  cfg.requester_dqn.net.num_heads = 2;
  cfg.requester_dqn.batch_size = 4;
  cfg.requester_dqn.replay.capacity = 64;
  cfg.seed = 5;
  return cfg;
}

TEST(FrameworkTest, NamesReflectObjective) {
  FixtureEnv env;
  TaskArrangementFramework worker_fw(
      SmallFrameworkConfig(Objective::kWorkerBenefit), &env,
      env.fb_.worker_dim(), env.fb_.task_dim());
  EXPECT_EQ(worker_fw.name(), "DDQN");
  TaskArrangementFramework balanced(
      SmallFrameworkConfig(Objective::kBalanced), &env, env.fb_.worker_dim(),
      env.fb_.task_dim());
  EXPECT_EQ(balanced.name(), "DDQN(w=0.25)");
}

TEST(FrameworkTest, ObjectiveControlsWhichNetsExist) {
  FixtureEnv env;
  TaskArrangementFramework worker_fw(
      SmallFrameworkConfig(Objective::kWorkerBenefit), &env,
      env.fb_.worker_dim(), env.fb_.task_dim());
  EXPECT_NE(worker_fw.worker_agent(), nullptr);
  EXPECT_EQ(worker_fw.requester_agent(), nullptr);

  TaskArrangementFramework requester_fw(
      SmallFrameworkConfig(Objective::kRequesterBenefit), &env,
      env.fb_.worker_dim(), env.fb_.task_dim());
  EXPECT_EQ(requester_fw.worker_agent(), nullptr);
  EXPECT_NE(requester_fw.requester_agent(), nullptr);

  TaskArrangementFramework balanced(
      SmallFrameworkConfig(Objective::kBalanced), &env, env.fb_.worker_dim(),
      env.fb_.task_dim());
  EXPECT_NE(balanced.worker_agent(), nullptr);
  EXPECT_NE(balanced.requester_agent(), nullptr);
}

TEST(FrameworkTest, RankReturnsFullPermutation) {
  FixtureEnv env;
  TaskArrangementFramework fw(SmallFrameworkConfig(Objective::kWorkerBenefit),
                              &env, env.fb_.worker_dim(), env.fb_.task_dim());
  Observation obs = env.MakeObservation(0, 0, {0, 1, 2, 3, 4}, 100);
  fw.OnArrival(obs);
  auto ranking = fw.Rank(obs);
  auto sorted = ranking;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(FrameworkTest, EmptyPoolRanksEmpty) {
  FixtureEnv env;
  TaskArrangementFramework fw(SmallFrameworkConfig(Objective::kWorkerBenefit),
                              &env, env.fb_.worker_dim(), env.fb_.task_dim());
  Observation obs = env.MakeObservation(0, 0, {}, 100);
  fw.OnArrival(obs);
  EXPECT_TRUE(fw.Rank(obs).empty());
}

TEST(FrameworkTest, FeedbackStoresTransitionsInBothMemories) {
  FixtureEnv env;
  TaskArrangementFramework fw(SmallFrameworkConfig(Objective::kBalanced),
                              &env, env.fb_.worker_dim(), env.fb_.task_dim());
  Observation obs = env.MakeObservation(0, 0, {0, 1, 2, 3}, 100);
  fw.OnArrival(obs);
  auto ranking = fw.Rank(obs);

  Feedback fb;
  fb.completed_pos = 1;
  fb.completed_index = ranking[1];
  fb.quality_gain = 0.5;
  env.ApplyCompletion(0, obs.tasks[fb.completed_index].id, 100, 0.5);
  fw.OnFeedback(obs, ranking, fb);

  // Cascade prefix of length 2 (one skip + one completion) → 2 transitions
  // per MDP.
  EXPECT_EQ(fw.worker_agent()->stored(), 2);
  EXPECT_EQ(fw.requester_agent()->stored(), 2);
}

TEST(FrameworkTest, SkipAllStoresCappedFailures) {
  FixtureEnv env;
  FrameworkConfig cfg = SmallFrameworkConfig(Objective::kWorkerBenefit);
  cfg.max_failed_stored = 2;
  TaskArrangementFramework fw(cfg, &env, env.fb_.worker_dim(),
                              env.fb_.task_dim());
  Observation obs = env.MakeObservation(0, 0, {0, 1, 2, 3, 4, 5}, 100);
  fw.OnArrival(obs);
  auto ranking = fw.Rank(obs);
  Feedback skip_all;  // completed_pos = -1
  fw.OnFeedback(obs, ranking, skip_all);
  EXPECT_EQ(fw.worker_agent()->stored(), 2);  // capped
}

TEST(FrameworkTest, FeedbackWithoutRankIsIgnored) {
  FixtureEnv env;
  TaskArrangementFramework fw(SmallFrameworkConfig(Objective::kWorkerBenefit),
                              &env, env.fb_.worker_dim(), env.fb_.task_dim());
  Observation obs = env.MakeObservation(0, 7, {0, 1}, 100);
  Feedback fb;
  fb.completed_pos = 0;
  fb.completed_index = 0;
  fw.OnFeedback(obs, {0, 1}, fb);  // no matching Rank call
  EXPECT_EQ(fw.worker_agent()->stored(), 0);
}

TEST(FrameworkTest, OutOfOrderFeedbackSettlesEveryPendingDecision) {
  // Delayed-feedback scenario: several workers are ranked before any of
  // their feedback arrives, and the feedback settles out of order. Every
  // decision context must be matched by arrival index and released.
  FixtureEnv env;
  TaskArrangementFramework fw(SmallFrameworkConfig(Objective::kWorkerBenefit),
                              &env, env.fb_.worker_dim(), env.fb_.task_dim());
  std::vector<Observation> obs;
  std::vector<std::vector<int>> rankings;
  for (int64_t i = 0; i < 4; ++i) {
    obs.push_back(env.MakeObservation(i % 3, i, {0, 1, 2, 3}, 100 + 10 * i));
    fw.OnArrival(obs.back());
    rankings.push_back(fw.Rank(obs.back()));
  }
  EXPECT_EQ(fw.pending_decisions(), 4u);

  int64_t stored_before = 0;
  for (int64_t i : {2, 0, 3, 1}) {  // settle out of order
    Feedback fb;
    fb.completed_pos = 0;
    fb.completed_index = rankings[i][0];
    fb.quality_gain = 0.1;
    fw.OnFeedback(obs[i], rankings[i], fb);
    const int64_t stored_now = fw.worker_agent()->stored();
    EXPECT_GT(stored_now, stored_before) << "feedback " << i << " ignored";
    stored_before = stored_now;
  }
  EXPECT_EQ(fw.pending_decisions(), 0u);
}

TEST(FrameworkTest, PendingBacklogEvictsOldestFirst) {
  // More in-flight decisions than kMaxPendingDecisions: the oldest are
  // dropped, their late feedback is ignored gracefully, and the newest
  // still settle normally.
  FixtureEnv env;
  TaskArrangementFramework fw(SmallFrameworkConfig(Objective::kWorkerBenefit),
                              &env, env.fb_.worker_dim(), env.fb_.task_dim());
  const int64_t total =
      static_cast<int64_t>(TaskArrangementFramework::kMaxPendingDecisions) + 8;
  std::vector<Observation> obs;
  std::vector<std::vector<int>> rankings;
  for (int64_t i = 0; i < total; ++i) {
    obs.push_back(env.MakeObservation(i % 3, i, {0, 1, 2}, 100 + i));
    fw.OnArrival(obs.back());
    rankings.push_back(fw.Rank(obs.back()));
    EXPECT_LE(fw.pending_decisions(),
              TaskArrangementFramework::kMaxPendingDecisions);
  }
  EXPECT_EQ(fw.pending_decisions(),
            TaskArrangementFramework::kMaxPendingDecisions);

  Feedback fb;
  fb.completed_pos = 0;
  // Arrival 0 was evicted (oldest-first): its feedback must be a no-op.
  fb.completed_index = rankings[0][0];
  const int64_t stored_before = fw.worker_agent()->stored();
  fw.OnFeedback(obs[0], rankings[0], fb);
  EXPECT_EQ(fw.worker_agent()->stored(), stored_before);
  EXPECT_EQ(fw.pending_decisions(),
            TaskArrangementFramework::kMaxPendingDecisions);

  // The newest decision survived and settles.
  fb.completed_index = rankings[total - 1][0];
  fw.OnFeedback(obs[total - 1], rankings[total - 1], fb);
  EXPECT_GT(fw.worker_agent()->stored(), stored_before);
  EXPECT_EQ(fw.pending_decisions(),
            TaskArrangementFramework::kMaxPendingDecisions - 1);
}

TEST(FrameworkTest, HistoryWarmStartStoresPrefixOutcomes) {
  FixtureEnv env;
  TaskArrangementFramework fw(SmallFrameworkConfig(Objective::kBalanced),
                              &env, env.fb_.worker_dim(), env.fb_.task_dim());
  Observation obs = env.MakeObservation(1, 0, {0, 1, 2}, 50);
  fw.OnArrival(obs);
  env.ApplyCompletion(1, 2, 50, 0.7);
  // Worker browsed 1, 0, then completed 2: one skip + one positive ... the
  // examined prefix of length 3 stores 3 transitions per MDP.
  fw.OnHistory(obs, {1, 0, 2}, /*completed_pos=*/2, 0.7);
  EXPECT_EQ(fw.worker_agent()->stored(), 3);
  EXPECT_EQ(fw.requester_agent()->stored(), 3);

  FrameworkConfig no_history = SmallFrameworkConfig(Objective::kBalanced);
  no_history.learn_from_history = false;
  TaskArrangementFramework cold(no_history, &env, env.fb_.worker_dim(),
                                env.fb_.task_dim());
  cold.OnHistory(obs, {1, 0, 2}, 2, 0.7);
  EXPECT_EQ(cold.worker_agent()->stored(), 0);
}

TEST(FrameworkTest, InitEndDigestsWarmupBuffer) {
  FixtureEnv env;
  FrameworkConfig cfg = SmallFrameworkConfig(Objective::kWorkerBenefit);
  cfg.warmup_learn_steps = 10;
  TaskArrangementFramework fw(cfg, &env, env.fb_.worker_dim(),
                              env.fb_.task_dim());
  // Feed enough history for at least one batch (batch_size = 4).
  for (int i = 0; i < 6; ++i) {
    Observation obs = env.MakeObservation(1, i, {0, 1, 2}, 50 + i);
    fw.OnArrival(obs);
    fw.OnHistory(obs, {0, 1, 2}, /*completed_pos=*/1, 0.2);
  }
  const int64_t before = fw.worker_agent()->learn_steps();
  fw.OnInitEnd();
  EXPECT_GE(fw.worker_agent()->learn_steps(), before + 10);
}

TEST(FrameworkTest, ArrivalModelFedByOnArrival) {
  FixtureEnv env;
  TaskArrangementFramework fw(SmallFrameworkConfig(Objective::kWorkerBenefit),
                              &env, env.fb_.worker_dim(), env.fb_.task_dim());
  fw.OnArrival(env.MakeObservation(0, 0, {0}, 100));
  fw.OnArrival(env.MakeObservation(1, 1, {0}, 130));
  fw.OnArrival(env.MakeObservation(0, 2, {0}, 160));
  EXPECT_EQ(fw.arrival_model().num_arrivals(), 3);
  EXPECT_EQ(fw.arrival_model().LastArrivalOf(0), 160);
}

TEST(FrameworkTest, CombinedScoresBlendByWeight) {
  FixtureEnv env;
  FrameworkConfig cfg = SmallFrameworkConfig(Objective::kBalanced);
  cfg.worker_weight = 0.25;
  TaskArrangementFramework fw(cfg, &env, env.fb_.worker_dim(),
                              env.fb_.task_dim());
  Observation obs = env.MakeObservation(0, 0, {0, 1, 2}, 100);
  auto combined = fw.CombinedScores(obs);
  ASSERT_EQ(combined.size(), 3u);
  // Check Q = w·Qw + (1−w)·Qr against the individual agents.
  StateConfig wcfg;
  StateTransformer st_w(wcfg, env.fb_.worker_dim(), env.fb_.task_dim());
  StateConfig rcfg;
  rcfg.include_quality = true;
  StateTransformer st_r(rcfg, env.fb_.worker_dim(), env.fb_.task_dim());
  auto sw = st_w.Build(obs);
  auto sr = st_r.Build(obs);
  auto qw = fw.worker_agent()->Scores(sw.matrix, sw.valid_n);
  auto qr = fw.requester_agent()->Scores(sr.matrix, sr.valid_n);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(combined[i], 0.25 * qw[i] + 0.75 * qr[i], 1e-9);
  }
}

TEST(FrameworkTest, AssignModePutsExplorerChoiceFirst) {
  FixtureEnv env;
  FrameworkConfig cfg = SmallFrameworkConfig(Objective::kWorkerBenefit);
  cfg.action_mode = ActionMode::kAssignOne;
  // Fully exploit so the choice is the argmax deterministically.
  cfg.explorer.assign_follow_start = 1.0;
  cfg.explorer.assign_follow_end = 1.0;
  TaskArrangementFramework fw(cfg, &env, env.fb_.worker_dim(),
                              env.fb_.task_dim());
  Observation obs = env.MakeObservation(0, 0, {0, 1, 2, 3}, 100);
  fw.OnArrival(obs);
  auto ranking = fw.Rank(obs);
  auto scores = fw.CombinedScores(obs);
  const int argmax = static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
  EXPECT_EQ(ranking[0], argmax);
}

TEST(FrameworkTest, LearningFromFeedbackChangesQValues) {
  FixtureEnv env;
  FrameworkConfig cfg = SmallFrameworkConfig(Objective::kWorkerBenefit);
  cfg.worker_dqn.batch_size = 4;
  TaskArrangementFramework fw(cfg, &env, env.fb_.worker_dim(),
                              env.fb_.task_dim());
  Observation probe = env.MakeObservation(0, 999, {0, 1, 2}, 90);
  auto before = fw.CombinedScores(probe);

  for (int i = 0; i < 12; ++i) {
    Observation obs = env.MakeObservation(0, i, {0, 1, 2}, 100 + i * 10);
    fw.OnArrival(obs);
    auto ranking = fw.Rank(obs);
    Feedback fb;
    fb.completed_pos = 0;
    fb.completed_index = ranking[0];
    env.ApplyCompletion(0, obs.tasks[ranking[0]].id, obs.time, 0.3);
    fw.OnFeedback(obs, ranking, fb);
  }
  auto after = fw.CombinedScores(probe);
  double diff = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    diff += std::fabs(after[i] - before[i]);
  }
  EXPECT_GT(diff, 1e-6) << "learner steps must move the Q function";
  EXPECT_GT(fw.worker_agent()->learn_steps(), 0);
}

}  // namespace
}  // namespace crowdrl
