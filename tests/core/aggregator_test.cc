#include "core/aggregator.h"

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

TEST(AggregatorTest, WeightedSumMatchesFormula) {
  Aggregator agg(0.25);
  auto combined = agg.Combine({1.0, 0.0, -2.0}, {0.0, 4.0, 2.0});
  ASSERT_EQ(combined.size(), 3u);
  EXPECT_DOUBLE_EQ(combined[0], 0.25);
  EXPECT_DOUBLE_EQ(combined[1], 3.0);
  EXPECT_DOUBLE_EQ(combined[2], 0.25 * -2.0 + 0.75 * 2.0);
}

TEST(AggregatorTest, ExtremesSelectOneSide) {
  std::vector<double> qw = {1, 2, 3};
  std::vector<double> qr = {9, 8, 7};
  Aggregator workers_only(1.0);
  EXPECT_EQ(workers_only.Combine(qw, qr), qw);
  Aggregator requesters_only(0.0);
  EXPECT_EQ(requesters_only.Combine(qw, qr), qr);
}

TEST(AggregatorTest, RankingInterpolatesBetweenObjectives) {
  // Task A is best for workers, task B for requesters; intermediate
  // weights must move the argmax from B to A monotonically.
  std::vector<double> qw = {1.0, 0.0};
  std::vector<double> qr = {0.0, 1.0};
  int prev_argmax = 1;
  for (double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    Aggregator agg(w);
    auto c = agg.Combine(qw, qr);
    const int argmax = c[0] >= c[1] ? 0 : 1;
    EXPECT_GE(argmax, 0);
    EXPECT_LE(prev_argmax, argmax + 1);  // never flips back to B after A
    if (argmax == 0) prev_argmax = 0;
  }
  EXPECT_EQ(prev_argmax, 0);
}

TEST(AggregatorDeathTest, RejectsWeightOutsideUnitInterval) {
  EXPECT_DEATH(Aggregator(-0.1), "worker_weight");
  EXPECT_DEATH(Aggregator(1.5), "worker_weight");
}

}  // namespace
}  // namespace crowdrl
