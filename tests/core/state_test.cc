#include "core/state.h"

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

// A tiny observation with owned feature storage.
struct ObsFixture {
  std::vector<std::vector<float>> task_features;
  Observation obs;

  explicit ObsFixture(int num_tasks, size_t task_dim = 4,
                      size_t worker_dim = 4) {
    obs.time = 1000;
    obs.worker = 0;
    obs.worker_quality = 0.6;
    obs.worker_features.assign(worker_dim, 0.25f);
    task_features.resize(num_tasks);
    for (int i = 0; i < num_tasks; ++i) {
      task_features[i].assign(task_dim, 0.0f);
      task_features[i][i % task_dim] = 1.0f;
    }
    for (int i = 0; i < num_tasks; ++i) {
      TaskSnapshot snap;
      snap.id = i;
      snap.deadline = 2000 + 100 * i;
      snap.features = &task_features[i];
      snap.quality = 0.1 * i;
      obs.tasks.push_back(snap);
    }
  }
};

TEST(StateTransformerTest, InputDimCountsQualityChannels) {
  StateConfig plain;
  plain.include_interaction = false;
  StateTransformer st_w(plain, 4, 4);
  EXPECT_EQ(st_w.input_dim(), 8u);
  StateConfig with_quality = plain;
  with_quality.include_quality = true;
  StateTransformer st_r(with_quality, 4, 4);
  EXPECT_EQ(st_r.input_dim(), 10u);
  // Default: the f_w ∘ f_t interaction block is appended.
  StateTransformer st_i(StateConfig{}, 4, 4);
  EXPECT_EQ(st_i.input_dim(), 12u);
}

TEST(StateTransformerTest, InteractionBlockIsElementwiseProduct) {
  ObsFixture fx(2);
  StateTransformer st(StateConfig{}, 4, 4);
  BuiltState s = st.Build(fx.obs);
  ASSERT_EQ(s.matrix.cols(), 12u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(s.matrix(r, 8 + c),
                      s.matrix(r, c) * s.matrix(r, 4 + c));
    }
  }
}

TEST(StateTransformerTest, RowsConcatenateWorkerAndTaskFeatures) {
  ObsFixture fx(3);
  StateTransformer st(StateConfig{}, 4, 4);
  BuiltState s = st.Build(fx.obs);
  ASSERT_EQ(s.matrix.rows(), 3u);
  ASSERT_EQ(s.valid_n, 3u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(s.matrix(r, c), 0.25f) << "worker part";
      EXPECT_EQ(s.matrix(r, 4 + c), fx.task_features[r][c]) << "task part";
    }
  }
  EXPECT_EQ(s.row_to_task, (std::vector<int>{0, 1, 2}));
}

TEST(StateTransformerTest, QualityChannelsAppended) {
  ObsFixture fx(2);
  StateConfig cfg;
  cfg.include_quality = true;
  cfg.include_interaction = false;
  StateTransformer st(cfg, 4, 4);
  BuiltState s = st.Build(fx.obs);
  ASSERT_EQ(s.matrix.cols(), 10u);
  EXPECT_FLOAT_EQ(s.matrix(0, 8), 0.6f);   // q_w
  EXPECT_FLOAT_EQ(s.matrix(1, 9), 0.1f);   // q_t of task 1
}

TEST(StateTransformerTest, MaxTasksKeepsLatestDeadlines) {
  ObsFixture fx(6);
  StateConfig cfg;
  cfg.max_tasks = 3;
  StateTransformer st(cfg, 4, 4);
  BuiltState s = st.Build(fx.obs);
  EXPECT_EQ(s.valid_n, 3u);
  // Deadlines grow with index, so tasks 3,4,5 survive.
  EXPECT_EQ(s.row_to_task, (std::vector<int>{3, 4, 5}));
}

TEST(StateTransformerTest, PadToMaxProducesFixedRows) {
  ObsFixture fx(2);
  StateConfig cfg;
  cfg.max_tasks = 5;
  cfg.pad_to_max = true;
  StateTransformer st(cfg, 4, 4);
  BuiltState s = st.Build(fx.obs);
  EXPECT_EQ(s.matrix.rows(), 5u);
  EXPECT_EQ(s.valid_n, 2u);
  for (size_t r = 2; r < 5; ++r) {
    for (size_t c = 0; c < s.matrix.cols(); ++c) {
      EXPECT_EQ(s.matrix(r, c), 0.0f);
    }
  }
}

TEST(StateTransformerTest, BuildWithWorkerSubstitutesFeatureAndQuality) {
  ObsFixture fx(3);
  StateConfig cfg;
  cfg.include_quality = true;
  cfg.include_interaction = false;
  StateTransformer st(cfg, 4, 4);
  std::vector<float> other_worker(4, 0.9f);
  std::vector<double> quality_override = {0.7, 0.8, 0.9};
  BuiltState s = st.BuildWithWorker(other_worker, 0.33, fx.obs, {2, 0},
                                    &quality_override);
  ASSERT_EQ(s.valid_n, 2u);
  EXPECT_EQ(s.matrix(0, 0), 0.9f);
  EXPECT_EQ(s.row_to_task, (std::vector<int>{2, 0}));
  EXPECT_FLOAT_EQ(s.matrix(0, 8), 0.33f);
  EXPECT_FLOAT_EQ(s.matrix(0, 9), 0.9f);  // override of task 2
  EXPECT_FLOAT_EQ(s.matrix(1, 9), 0.7f);  // override of task 0
}

TEST(StateTransformerTest, EmptyObservationGivesEmptyState) {
  Observation obs;
  obs.worker_features.assign(4, 0.0f);
  StateTransformer st(StateConfig{}, 4, 4);
  BuiltState s = st.Build(obs);
  EXPECT_EQ(s.valid_n, 0u);
  EXPECT_EQ(s.matrix.rows(), 0u);
}

}  // namespace
}  // namespace crowdrl
