// Runs the framework in its most paper-literal configuration — fixed-size
// zero-padded states, unmasked attention, raw [f_w ⊕ f_t] rows, published
// γ/buffer/target-sync values — to guarantee that the faithful path stays
// functional alongside the CPU-calibrated defaults.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/experiment.h"

namespace crowdrl {
namespace {

TEST(PaperFidelityTest, LiteralConfigurationRunsEndToEnd) {
  SyntheticConfig dcfg;
  dcfg.scale = 0.06;
  dcfg.eval_months = 2;
  dcfg.seed = 71;
  Dataset ds = SyntheticGenerator(dcfg).Generate();

  ExperimentConfig ec;
  ec.hidden_dim = 16;  // shrunk for test speed; structure is what matters
  ec.num_heads = 4;    // Fig. 3's h = 4
  ec.batch_size = 8;
  ec.learn_every = 4;
  ec.seed = 5;
  Experiment exp(&ds, ec);

  FrameworkConfig fc = exp.MakeFrameworkConfig(Objective::kBalanced);
  // Paper-literal switches:
  fc.state.include_interaction = false;  // raw [f_w ⊕ f_t]
  fc.state.pad_to_max = true;            // fixed maxT zero padding
  fc.state.max_tasks = 32;
  fc.worker_dqn.net.masked_attention = false;  // raw softmax over padding
  fc.requester_dqn.net.masked_attention = false;
  fc.worker_dqn.gamma = 0.3;      // Sec. VII-B1
  fc.requester_dqn.gamma = 0.5;   // Sec. VII-B1
  fc.worker_dqn.replay.capacity = 1000;
  fc.worker_dqn.target_sync_every = 100;
  fc.worker_weight = 0.25;        // Fig. 9's holistic optimum

  MethodResult r = exp.RunFramework(fc, "ddqn-paper-literal");
  EXPECT_GT(r.run.arrivals_evaluated, 50);
  EXPECT_GE(r.run.final_metrics.cr, 0.0);
  EXPECT_LE(r.run.final_metrics.cr, 1.0);
  EXPECT_GE(r.run.final_metrics.qg, 0.0);
  // It must still have learned *something* (stored + stepped).
  EXPECT_GT(r.run.completions, 0);
}

TEST(PaperFidelityTest, PublishedHyperParametersAreTheDocumentedOnes) {
  // Guard against silent drift of the "--paper" mode away from Sec. VII-B1.
  ExperimentConfig cfg;
  cfg.UsePaperScale();
  EXPECT_EQ(cfg.hidden_dim, 128u);
  EXPECT_EQ(cfg.batch_size, 64u);
  EXPECT_EQ(cfg.replay_capacity, 1000u);
  EXPECT_EQ(cfg.target_sync_every, 100);
  EXPECT_EQ(cfg.learn_every, 1);
  EXPECT_DOUBLE_EQ(cfg.learning_rate, 1e-3);
  EXPECT_DOUBLE_EQ(cfg.gamma_worker, 0.3);
  EXPECT_DOUBLE_EQ(cfg.gamma_requester, 0.5);
  EXPECT_DOUBLE_EQ(cfg.worker_weight, 0.25);
}

TEST(PaperFidelityTest, ExplorerScheduleMatchesSecVIIB1) {
  ExplorerConfig cfg;
  // "we set the initial ε = 0.9, and increase it until ε = 0.98".
  EXPECT_DOUBLE_EQ(cfg.assign_follow_start, 0.90);
  EXPECT_DOUBLE_EQ(cfg.assign_follow_end, 0.98);
  // "To recommend the task list, ε is always 0.9".
  EXPECT_DOUBLE_EQ(cfg.list_noise_prob, 0.90);
  // "the decay factor ... is set as 1 initially".
  EXPECT_DOUBLE_EQ(cfg.noise_scale_start, 1.0);
}

TEST(PaperFidelityTest, QualityModelUsesPaperExponent) {
  HarnessConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.quality_p, 2.0);  // "We set p = 2"
}

}  // namespace
}  // namespace crowdrl
