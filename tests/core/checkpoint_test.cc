// Persistence: the arrival statistics and the full framework checkpoint
// must round-trip losslessly — an arrangement service that restarts should
// not forget its learned rhythms or value functions.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/framework.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "eval/harness.h"

namespace crowdrl {
namespace {

TEST(ArrivalModelPersistenceTest, RoundTripPreservesStatistics) {
  ArrivalModel model;
  Rng rng(4);
  SimTime t = 0;
  for (int i = 0; i < 500; ++i) {
    t += rng.UniformInt(1, 40);
    model.RecordArrival(static_cast<int>(rng.UniformInt(30)), t);
  }
  std::stringstream ss;
  ASSERT_TRUE(model.Save(&ss).ok());

  ArrivalModel restored;
  ASSERT_TRUE(restored.Load(&ss).ok());
  EXPECT_EQ(restored.num_arrivals(), model.num_arrivals());
  EXPECT_EQ(restored.last_arrival_time(), model.last_arrival_time());
  EXPECT_DOUBLE_EQ(restored.new_worker_rate(), model.new_worker_rate());
  EXPECT_EQ(restored.seen_workers(), model.seen_workers());
  for (SimTime g : {5, 100, 1440, 5000}) {
    EXPECT_DOUBLE_EQ(restored.SameWorkerReturnProb(g),
                     model.SameWorkerReturnProb(g));
  }
  for (int w : model.seen_workers()) {
    EXPECT_EQ(restored.LastArrivalOf(w), model.LastArrivalOf(w));
  }
  // Both continue identically after more arrivals.
  model.RecordArrival(3, t + 100);
  restored.RecordArrival(3, t + 100);
  EXPECT_DOUBLE_EQ(restored.any_gap().Prob(30), model.any_gap().Prob(30));
}

TEST(ArrivalModelPersistenceTest, LoadRejectsGarbage) {
  std::stringstream ss;
  ss << "definitely not a checkpoint";
  ArrivalModel model;
  EXPECT_FALSE(model.Load(&ss).ok());
}

class FrameworkCheckpointTest : public ::testing::Test {
 protected:
  static Dataset MakeDataset() {
    SyntheticConfig cfg;
    cfg.scale = 0.06;
    cfg.eval_months = 2;
    cfg.seed = 91;
    return SyntheticGenerator(cfg).Generate();
  }

  static ExperimentConfig MakeConfig() {
    ExperimentConfig cfg;
    cfg.hidden_dim = 16;
    cfg.num_heads = 2;
    cfg.batch_size = 8;
    cfg.learn_every = 4;
    cfg.seed = 13;
    return cfg;
  }
};

TEST_F(FrameworkCheckpointTest, SaveLoadRoundTripsTrainedState) {
  Dataset ds = MakeDataset();
  const std::string path = "/tmp/crowdrl_framework_ckpt_test.bin";

  // Train a framework over the trace, checkpoint it.
  ReplayHarness harness(&ds, MakeConfig().harness);
  Experiment exp(&ds, MakeConfig());
  FrameworkConfig fc = exp.MakeFrameworkConfig(Objective::kBalanced);
  TaskArrangementFramework trained(fc, &harness,
                                   harness.worker_feature_dim(),
                                   harness.task_feature_dim());
  harness.Run(&trained);
  ASSERT_TRUE(trained.SaveState(path).ok());

  // Restore into a freshly-initialized framework; combined scores on a
  // probe observation must match exactly.
  ReplayHarness probe_env(&ds, MakeConfig().harness);
  TaskArrangementFramework restored(fc, &probe_env,
                                    probe_env.worker_feature_dim(),
                                    probe_env.task_feature_dim());
  ASSERT_TRUE(restored.LoadState(path).ok());

  // Build a probe observation from the trained harness's world.
  Observation obs;
  obs.time = ds.InitEndTime() + 100;
  obs.worker = 0;
  obs.worker_quality = 0.5;
  obs.worker_features.assign(probe_env.worker_feature_dim(), 0.1f);
  std::vector<std::vector<float>> feats;
  feats.reserve(4);
  for (int i = 0; i < 4; ++i) {
    feats.push_back(std::vector<float>(probe_env.task_feature_dim(), 0.0f));
    feats.back()[i % probe_env.task_feature_dim()] = 1.0f;
  }
  for (int i = 0; i < 4; ++i) {
    TaskSnapshot snap;
    snap.id = i;
    snap.deadline = obs.time + 10000;
    snap.features = &feats[i];
    snap.quality = 0.2;
    obs.tasks.push_back(snap);
  }
  auto q_trained = trained.CombinedScores(obs);
  auto q_restored = restored.CombinedScores(obs);
  ASSERT_EQ(q_trained.size(), q_restored.size());
  for (size_t i = 0; i < q_trained.size(); ++i) {
    EXPECT_DOUBLE_EQ(q_trained[i], q_restored[i]);
  }
  // Arrival statistics restored too.
  EXPECT_EQ(restored.arrival_model().num_arrivals(),
            trained.arrival_model().num_arrivals());
  std::remove(path.c_str());
}

TEST_F(FrameworkCheckpointTest, LoadRejectsObjectiveMismatch) {
  Dataset ds = MakeDataset();
  const std::string path = "/tmp/crowdrl_framework_ckpt_mismatch.bin";
  ReplayHarness env(&ds, MakeConfig().harness);
  Experiment exp(&ds, MakeConfig());

  FrameworkConfig worker_only =
      exp.MakeFrameworkConfig(Objective::kWorkerBenefit);
  TaskArrangementFramework a(worker_only, &env, env.worker_feature_dim(),
                             env.task_feature_dim());
  ASSERT_TRUE(a.SaveState(path).ok());

  FrameworkConfig balanced = exp.MakeFrameworkConfig(Objective::kBalanced);
  TaskArrangementFramework b(balanced, &env, env.worker_feature_dim(),
                             env.task_feature_dim());
  EXPECT_FALSE(b.LoadState(path).ok());
  std::remove(path.c_str());
}

TEST_F(FrameworkCheckpointTest, LoadRejectsMissingFile) {
  Dataset ds = MakeDataset();
  ReplayHarness env(&ds, MakeConfig().harness);
  Experiment exp(&ds, MakeConfig());
  FrameworkConfig fc = exp.MakeFrameworkConfig(Objective::kWorkerBenefit);
  TaskArrangementFramework fw(fc, &env, env.worker_feature_dim(),
                              env.task_feature_dim());
  EXPECT_FALSE(fw.LoadState("/nonexistent/ckpt.bin").ok());
}

}  // namespace
}  // namespace crowdrl
