// Boundary conditions across the core framework that the main suites don't
// exercise: single-task pools, workers with no history, rewards at the
// extremes, and truncation interplay.
#include <gtest/gtest.h>

#include "core/dqn_agent.h"
#include "core/framework.h"

namespace crowdrl {
namespace {

// Reuse a minimal env fixture (structured like framework_test's).
class EdgeEnv : public EnvView {
 public:
  EdgeEnv()
      : fb_([] {
          FeatureConfig cfg;
          cfg.num_categories = 2;
          cfg.num_domains = 2;
          cfg.award_buckets = 2;
          return cfg;
        }(), 4, 8) {
    for (int i = 0; i < 8; ++i) {
      Task t;
      t.id = i;
      t.category = i % 2;
      t.domain = (i / 2) % 2;
      t.award = 100 + 10 * i;
      tasks_.push_back(t);
    }
  }
  const FeatureBuilder& features() const override { return fb_; }
  double WorkerQuality(WorkerId) const override { return 0.5; }
  double TaskQuality(TaskId) const override { return 0.25; }
  SimTime now() const override { return 500; }

  Observation MakeObs(int64_t arrival, std::vector<int> ids) {
    Observation obs;
    obs.time = 500;
    obs.arrival_index = arrival;
    obs.worker = 0;
    obs.worker_quality = 0.5;
    obs.worker_features = fb_.WorkerFeature(0, 500);
    for (int id : ids) {
      TaskSnapshot snap;
      snap.id = id;
      snap.category = tasks_[id].category;
      snap.domain = tasks_[id].domain;
      snap.award = tasks_[id].award;
      snap.deadline = 500 + 4000 + id;
      snap.features = &fb_.TaskFeature(tasks_[id]);
      snap.quality = 0.25;
      obs.tasks.push_back(snap);
    }
    return obs;
  }

  FeatureBuilder fb_;
  std::vector<Task> tasks_;
};

FrameworkConfig TinyConfig(Objective objective) {
  FrameworkConfig cfg = FrameworkConfig::Defaults();
  cfg.objective = objective;
  for (DqnAgentConfig* dqn : {&cfg.worker_dqn, &cfg.requester_dqn}) {
    dqn->net.hidden_dim = 8;
    dqn->net.num_heads = 2;
    dqn->batch_size = 4;
    dqn->replay.capacity = 16;
  }
  cfg.seed = 77;
  return cfg;
}

TEST(EdgeCasesTest, SingleTaskPoolRanksAndLearns) {
  EdgeEnv env;
  TaskArrangementFramework fw(TinyConfig(Objective::kWorkerBenefit), &env,
                              env.fb_.worker_dim(), env.fb_.task_dim());
  for (int i = 0; i < 6; ++i) {
    Observation obs = env.MakeObs(i, {3});
    fw.OnArrival(obs);
    auto ranking = fw.Rank(obs);
    ASSERT_EQ(ranking, (std::vector<int>{0}));
    Feedback fb;
    fb.completed_pos = i % 2 == 0 ? 0 : -1;
    fb.completed_index = fb.completed_pos >= 0 ? 0 : -1;
    fw.OnFeedback(obs, ranking, fb);
  }
  EXPECT_GT(fw.worker_agent()->stored(), 0);
}

TEST(EdgeCasesTest, TruncatedPoolStillProducesFullRanking) {
  EdgeEnv env;
  FrameworkConfig cfg = TinyConfig(Objective::kWorkerBenefit);
  cfg.state.max_tasks = 3;  // pool of 8 truncated to 3 in-state tasks
  TaskArrangementFramework fw(cfg, &env, env.fb_.worker_dim(),
                              env.fb_.task_dim());
  Observation obs = env.MakeObs(0, {0, 1, 2, 3, 4, 5, 6, 7});
  fw.OnArrival(obs);
  auto ranking = fw.Rank(obs);
  auto sorted = ranking;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  // Feedback on a truncated-away task must not crash or store a bogus row.
  Feedback fb;
  fb.completed_pos = 7;
  fb.completed_index = ranking[7];
  fw.OnFeedback(obs, ranking, fb);
}

TEST(EdgeCasesTest, NegativeAndLargeRewardsKeepTargetsFinite) {
  DqnAgentConfig cfg;
  cfg.net.input_dim = 4;
  cfg.net.hidden_dim = 8;
  cfg.net.num_heads = 2;
  cfg.batch_size = 4;
  cfg.replay.capacity = 16;
  DqnAgent agent(cfg);
  Rng rng(5);
  for (float reward : {-100.0f, 0.0f, 1e6f, 1e-9f}) {
    Transition t;
    t.state = Matrix::Uniform(3, 4, &rng);
    t.valid_n = 3;
    t.action_row = 0;
    t.reward = reward;
    agent.Store(std::move(t));
  }
  ASSERT_TRUE(agent.LearnStep());
  EXPECT_TRUE(std::isfinite(agent.last_loss()));
  Matrix probe = Matrix::Uniform(3, 4, &rng);
  for (double q : agent.Scores(probe, 3)) {
    EXPECT_TRUE(std::isfinite(q));
  }
}

TEST(EdgeCasesTest, RequesterOnlyFrameworkHandlesColdEverything) {
  // No worker history, fresh tasks, zero qualities: the requester-side
  // pipeline (state + expected-next-worker predictor) must still work.
  EdgeEnv env;
  TaskArrangementFramework fw(TinyConfig(Objective::kRequesterBenefit), &env,
                              env.fb_.worker_dim(), env.fb_.task_dim());
  Observation obs = env.MakeObs(0, {0, 1});
  fw.OnArrival(obs);
  auto ranking = fw.Rank(obs);
  ASSERT_EQ(ranking.size(), 2u);
  Feedback fb;
  fb.completed_pos = 0;
  fb.completed_index = ranking[0];
  fb.quality_gain = 0.5;
  fw.OnFeedback(obs, ranking, fb);
  EXPECT_EQ(fw.requester_agent()->stored(), 1);
}

TEST(EdgeCasesTest, PendingDecisionBacklogIsBounded) {
  EdgeEnv env;
  TaskArrangementFramework fw(TinyConfig(Objective::kWorkerBenefit), &env,
                              env.fb_.worker_dim(), env.fb_.task_dim());
  // Rank 200 arrivals without ever giving feedback; memory must stay
  // bounded (the map caps at kMaxPendingDecisions) and old feedback is
  // silently dropped.
  Observation first = env.MakeObs(0, {0, 1});
  fw.OnArrival(first);
  auto first_ranking = fw.Rank(first);
  for (int i = 1; i < 200; ++i) {
    Observation obs = env.MakeObs(i, {0, 1});
    fw.OnArrival(obs);
    fw.Rank(obs);
  }
  Feedback fb;
  fb.completed_pos = 0;
  fb.completed_index = first_ranking[0];
  const int64_t before = fw.worker_agent()->stored();
  fw.OnFeedback(first, first_ranking, fb);  // decision was evicted
  EXPECT_EQ(fw.worker_agent()->stored(), before);
}

}  // namespace
}  // namespace crowdrl
