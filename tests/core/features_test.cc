#include "core/features.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace crowdrl {
namespace {

FeatureConfig SmallConfig() {
  FeatureConfig cfg;
  cfg.num_categories = 4;
  cfg.num_domains = 3;
  cfg.award_buckets = 2;
  cfg.history_halflife_days = 7.0;
  return cfg;
}

Task MakeTask(int id, int cat, int dom, double award) {
  Task t;
  t.id = id;
  t.category = cat;
  t.domain = dom;
  t.award = award;
  return t;
}

TEST(FeatureBuilderTest, DimsFollowConfig) {
  FeatureBuilder fb(SmallConfig(), 5, 10);
  EXPECT_EQ(fb.task_dim(), 4u + 3u + 2u);
  EXPECT_EQ(fb.worker_dim(), fb.task_dim());
}

TEST(FeatureBuilderTest, TaskFeatureIsThreeHot) {
  FeatureBuilder fb(SmallConfig(), 5, 10);
  const Task t = MakeTask(0, 2, 1, 50.0);
  const auto& f = fb.TaskFeature(t);
  ASSERT_EQ(f.size(), 9u);
  double sum = 0;
  for (float v : f) sum += v;
  EXPECT_DOUBLE_EQ(sum, 3.0);  // one-hot in each of 3 groups
  EXPECT_EQ(f[2], 1.0f);       // category 2
  EXPECT_EQ(f[4 + 1], 1.0f);   // domain 1
}

TEST(FeatureBuilderTest, TaskFeatureIsCachedAndStable) {
  FeatureBuilder fb(SmallConfig(), 5, 10);
  const Task t = MakeTask(3, 1, 0, 400.0);
  const auto* first = &fb.TaskFeature(t);
  const auto* second = &fb.TaskFeature(t);
  EXPECT_EQ(first, second);
}

TEST(FeatureBuilderTest, AwardBucketsAreMonotoneAndClamped) {
  FeatureBuilder fb(SmallConfig(), 1, 1);
  EXPECT_EQ(fb.AwardBucket(1.0), 0);        // below range → clamp
  EXPECT_EQ(fb.AwardBucket(1e9), 1);        // above range → clamp
  EXPECT_LE(fb.AwardBucket(50), fb.AwardBucket(1000));
}

TEST(FeatureBuilderTest, ColdWorkerHasZeroFeature) {
  FeatureBuilder fb(SmallConfig(), 3, 10);
  auto f = fb.WorkerFeature(0, 1000);
  for (float v : f) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(fb.WorkerHistoryWeight(0, 1000), 0.0);
}

TEST(FeatureBuilderTest, CompletionHistoryBecomesDistribution) {
  FeatureBuilder fb(SmallConfig(), 3, 10);
  fb.RecordCompletion(0, MakeTask(0, 1, 0, 50), 0);
  fb.RecordCompletion(0, MakeTask(1, 1, 2, 50), 0);
  auto f = fb.WorkerFeature(0, 0);
  double sum = 0;
  for (float v : f) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-5);  // L1-normalized
  // Category 1 appeared twice out of two completions → weight 2/6 of mass.
  EXPECT_NEAR(f[1], 2.0 / 6.0, 1e-5);
  EXPECT_NEAR(f[4 + 0], 1.0 / 6.0, 1e-5);
  EXPECT_NEAR(f[4 + 2], 1.0 / 6.0, 1e-5);
}

TEST(FeatureBuilderTest, HistoryDecaysWithHalfLife) {
  FeatureConfig cfg = SmallConfig();
  cfg.history_halflife_days = 7.0;
  FeatureBuilder fb(cfg, 2, 10);
  fb.RecordCompletion(0, MakeTask(0, 0, 0, 50), 0);
  const double w0 = fb.WorkerHistoryWeight(0, 0);
  const double w7 = fb.WorkerHistoryWeight(0, 7 * kMinutesPerDay);
  EXPECT_NEAR(w7, w0 / 2.0, 1e-6);
  const double w14 = fb.WorkerHistoryWeight(0, 14 * kMinutesPerDay);
  EXPECT_NEAR(w14, w0 / 4.0, 1e-6);
}

TEST(FeatureBuilderTest, RecentCompletionsDominateOldOnes) {
  FeatureBuilder fb(SmallConfig(), 2, 10);
  fb.RecordCompletion(0, MakeTask(0, 0, 0, 50), 0);  // old: category 0
  fb.RecordCompletion(0, MakeTask(1, 3, 0, 50),
                      30 * kMinutesPerDay);  // recent: category 3
  auto f = fb.WorkerFeature(0, 30 * kMinutesPerDay);
  EXPECT_GT(f[3], f[0]);
}

TEST(FeatureBuilderTest, WorkerFeatureIntoAvoidsReallocation) {
  FeatureBuilder fb(SmallConfig(), 2, 10);
  fb.RecordCompletion(1, MakeTask(0, 2, 1, 100), 0);
  std::vector<float> buf;
  fb.WorkerFeatureInto(1, 0, &buf);
  ASSERT_EQ(buf.size(), fb.worker_dim());
  auto copy = fb.WorkerFeature(1, 0);
  for (size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], copy[i]);
}

TEST(FeatureBuilderTest, MeanWorkerFeatureAverages) {
  FeatureBuilder fb(SmallConfig(), 3, 10);
  fb.RecordCompletion(0, MakeTask(0, 0, 0, 50), 0);
  fb.RecordCompletion(1, MakeTask(1, 3, 0, 50), 0);
  auto mean = fb.MeanWorkerFeature(0, {0, 1});
  EXPECT_GT(mean[0], 0.0f);
  EXPECT_GT(mean[3], 0.0f);
  EXPECT_NEAR(mean[0], mean[3], 1e-5);
  // Empty worker set → zero vector.
  auto empty = fb.MeanWorkerFeature(0, {});
  for (float v : empty) EXPECT_EQ(v, 0.0f);
}

TEST(FeatureBuilderTest, DistinctWorkersAreIndependent) {
  FeatureBuilder fb(SmallConfig(), 2, 10);
  fb.RecordCompletion(0, MakeTask(0, 1, 1, 50), 0);
  auto f1 = fb.WorkerFeature(1, 0);
  for (float v : f1) EXPECT_EQ(v, 0.0f);
}

TEST(FeatureBuilderTest, ConcurrentFirstFillIsRaceFreeAndStable) {
  // Regression for the double-checked task-cache fill: many threads race
  // to be the first reader of every task id. Each must observe a fully
  // built feature at a stable address (the winner fills under the lock;
  // losers either wait or take the published fast path). Most meaningful
  // under TSan/ASan CI, but the cross-thread address and value agreement
  // checks below fail on torn fills even in a plain build.
  constexpr int kTasks = 64;
  constexpr int kThreads = 8;
  FeatureBuilder fb(SmallConfig(), 1, kTasks);
  std::vector<std::vector<const std::vector<float>*>> seen(
      kThreads, std::vector<const std::vector<float>*>(kTasks, nullptr));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Staggered orders so first-touch of each id rotates across threads.
      for (int k = 0; k < kTasks; ++k) {
        const int id = (k + t * (kTasks / kThreads)) % kTasks;
        const Task task = MakeTask(id, id % 4, id % 3, 50.0 * (id + 1));
        const auto& f = fb.TaskFeature(task);
        ASSERT_EQ(f.size(), fb.task_dim());
        float sum = 0;
        for (float v : f) sum += v;
        ASSERT_EQ(sum, 3.0f) << "torn fill for task " << id;
        seen[t][id] = &f;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int id = 0; id < kTasks; ++id) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][id], seen[0][id])
          << "task " << id << " cached at different addresses";
    }
  }
}

}  // namespace
}  // namespace crowdrl
