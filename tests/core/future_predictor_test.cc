#include "core/future_predictor.h"

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

// Minimal EnvView over synthetic fixtures.
class FakeEnv : public EnvView {
 public:
  FakeEnv(FeatureBuilder* fb, std::vector<double> worker_quality)
      : fb_(fb), wq_(std::move(worker_quality)) {}
  const FeatureBuilder& features() const override { return *fb_; }
  double WorkerQuality(WorkerId w) const override { return wq_[w]; }
  double TaskQuality(TaskId) const override { return 0.5; }
  SimTime now() const override { return 0; }

 private:
  FeatureBuilder* fb_;
  std::vector<double> wq_;
};

struct Fixture {
  FeatureConfig fcfg;
  FeatureBuilder fb;
  std::vector<std::vector<float>> task_feats;
  Observation obs;

  Fixture(int num_tasks, SimTime now, std::vector<SimTime> deadlines)
      : fcfg([] {
          FeatureConfig c;
          c.num_categories = 3;
          c.num_domains = 2;
          c.award_buckets = 2;
          return c;
        }()),
        fb(fcfg, /*num_workers=*/4, /*num_tasks=*/16) {
    obs.time = now;
    obs.worker = 0;
    obs.worker_quality = 0.5;
    obs.worker_features.assign(fb.worker_dim(), 0.1f);
    task_feats.resize(num_tasks);
    for (int i = 0; i < num_tasks; ++i) {
      task_feats[i].assign(fb.task_dim(), 0.0f);
      task_feats[i][i % fb.task_dim()] = 1.0f;
      TaskSnapshot snap;
      snap.id = i;
      snap.deadline = deadlines[i];
      snap.features = &task_feats[i];
      snap.quality = 0.2;
      obs.tasks.push_back(snap);
    }
  }
};

TEST(ExpirySegmentsTest, NoDeadlinesInsideSupportIsOneSegment) {
  GapHistogram gaps(0, 60, 1, 0.5);
  gaps.Add(10);
  // Both tasks expire far beyond the support.
  auto segs = FutureStatePredictor::ExpirySegments({5000, 4000}, gaps, 8);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].first, 2u);
  EXPECT_NEAR(segs[0].second, 1.0, 1e-6);
}

TEST(ExpirySegmentsTest, DeadlineInsideSupportSplitsMass) {
  GapHistogram gaps(0, 99, 1, 0.0);
  for (int g = 0; g < 100; ++g) gaps.Add(g);  // uniform over [0,99]
  // One task expires at gap 50, one far out.
  auto segs = FutureStatePredictor::ExpirySegments({500, 50}, gaps, 8);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].first, 2u);  // both alive before 50
  EXPECT_NEAR(segs[0].second, 0.5, 0.02);
  EXPECT_EQ(segs[1].first, 1u);  // one alive after
  EXPECT_NEAR(segs[1].second, 0.5, 0.02);
}

TEST(ExpirySegmentsTest, AlreadyExpiredTasksNeverAppear) {
  GapHistogram gaps(1, 100, 1, 0.0);
  for (int g = 1; g <= 100; ++g) gaps.Add(g);
  // Deadlines at relative time 0 are dead for every future gap.
  auto segs = FutureStatePredictor::ExpirySegments({200, 0, 0}, gaps, 8);
  for (const auto& [n, p] : segs) {
    EXPECT_EQ(n, 1u);
    EXPECT_GT(p, 0.0f);
  }
}

TEST(ExpirySegmentsTest, MergesDownToCap) {
  GapHistogram gaps(1, 1000, 1, 0.0);
  for (int g = 1; g <= 1000; ++g) gaps.Add(g);
  std::vector<SimTime> deadlines;
  for (int i = 20; i >= 1; --i) deadlines.push_back(i * 40);  // 20 cuts
  auto segs = FutureStatePredictor::ExpirySegments(deadlines, gaps, 5);
  EXPECT_LE(segs.size(), 5u);
  double mass = 0;
  for (const auto& [n, p] : segs) mass += p;
  // Gaps beyond the last deadline (800) leave an empty pool: that 20% of
  // probability mass contributes no future term, by design.
  EXPECT_NEAR(mass, 0.8, 0.05);
  // valid_n decreases over segments.
  for (size_t i = 1; i < segs.size(); ++i) {
    EXPECT_LE(segs[i].first, segs[i - 1].first);
  }
}

TEST(ExpirySegmentsTest, AllTasksExpiredGivesNoSegments) {
  GapHistogram gaps(1, 100, 1, 0.0);
  gaps.Add(50);
  auto segs = FutureStatePredictor::ExpirySegments({1, 1}, gaps, 4);
  EXPECT_TRUE(segs.empty());
}

TEST(PredictorTest, SameWorkerSpecUsesUpdatedFeature) {
  Fixture fx(3, /*now=*/1000, {1000 + 20000, 1000 + 30000, 1000 + 40000});
  StateConfig scfg;
  StateTransformer st(scfg, fx.fb.worker_dim(), fx.fb.task_dim());
  FutureStatePredictor predictor(PredictorConfig{}, &st);

  ArrivalModel arrivals;
  arrivals.RecordArrival(0, 500);
  arrivals.RecordArrival(0, 500 + 1440);  // 1-day return habit

  std::vector<float> updated(fx.fb.worker_dim(), 0.7f);
  auto spec = predictor.PredictSameWorker(fx.obs, updated, 0.5, arrivals);
  ASSERT_EQ(spec.branches.size(), 1u);
  const auto& branch = spec.branches[0];
  // Deadlines beyond one week ⇒ single segment, all three tasks alive.
  ASSERT_FALSE(branch.segments.empty());
  EXPECT_EQ(branch.segments[0].first, 3u);
  // Worker part of every row is the *updated* feature.
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_FLOAT_EQ(branch.base(r, 0), 0.7f);
  }
  EXPECT_NEAR(spec.TotalMass(), 1.0, 1e-5);
}

TEST(PredictorTest, SameWorkerSpecSplitsAtDeadlines) {
  // One task expires 2 days out — within φ's one-week support.
  Fixture fx(2, /*now=*/0, {2 * kMinutesPerDay, 30 * kMinutesPerDay});
  StateTransformer st(StateConfig{}, fx.fb.worker_dim(), fx.fb.task_dim());
  FutureStatePredictor predictor(PredictorConfig{}, &st);

  ArrivalModel arrivals;
  arrivals.RecordArrival(0, 0);
  for (int i = 1; i <= 20; ++i) {
    arrivals.RecordArrival(0, i * 1440);  // daily returns
  }

  std::vector<float> fw(fx.fb.worker_dim(), 0.3f);
  auto spec = predictor.PredictSameWorker(fx.obs, fw, 0.5, arrivals);
  ASSERT_EQ(spec.branches.size(), 1u);
  ASSERT_EQ(spec.branches[0].segments.size(), 2u);
  EXPECT_EQ(spec.branches[0].segments[0].first, 2u);
  EXPECT_EQ(spec.branches[0].segments[1].first, 1u);
  // Rows are ordered by deadline descending: row 0 = task 1 (later).
  EXPECT_EQ(spec.branches[0].base.rows(), 2u);
}

TEST(PredictorTest, NextWorkerExpectationBlendsSeenWorkers) {
  Fixture fx(2, /*now=*/10000, {10000 + 90000, 10000 + 80000});
  StateConfig scfg;
  scfg.include_quality = true;
  StateTransformer st(scfg, fx.fb.worker_dim(), fx.fb.task_dim());
  PredictorConfig pcfg;  // expectation mode
  FutureStatePredictor predictor(pcfg, &st);

  ArrivalModel arrivals;
  arrivals.RecordArrival(1, 9000);
  arrivals.RecordArrival(2, 9500);
  arrivals.RecordArrival(1, 9990);
  // Give workers distinct features.
  Task t1;
  t1.id = 0;
  t1.category = 0;
  t1.domain = 0;
  t1.award = 100;
  fx.fb.RecordCompletion(1, t1, 9000);
  Task t2 = t1;
  t2.id = 1;
  t2.category = 2;
  fx.fb.RecordCompletion(2, t2, 9500);

  FakeEnv env(&fx.fb, {0.5, 0.9, 0.1, 0.5});
  auto spec = predictor.PredictNextWorker(fx.obs, arrivals, env);
  ASSERT_EQ(spec.branches.size(), 1u);
  const auto& base = spec.branches[0].base;
  // The expected worker feature must mix category 0 (worker 1) and
  // category 2 (worker 2) mass.
  EXPECT_GT(base(0, 0), 0.0f);
  EXPECT_GT(base(0, 2), 0.0f);
  // Quality channel is the blended expected q_w, strictly inside (0.1,0.9).
  const size_t qcol = fx.fb.worker_dim() + fx.fb.task_dim();
  EXPECT_GT(base(0, qcol), 0.1f);
  EXPECT_LT(base(0, qcol), 0.9f);
}

TEST(PredictorTest, NextWorkerTopKProducesBranches) {
  Fixture fx(2, /*now=*/10000, {10000 + 90000, 10000 + 80000});
  StateConfig scfg;
  scfg.include_quality = true;
  StateTransformer st(scfg, fx.fb.worker_dim(), fx.fb.task_dim());
  PredictorConfig pcfg;
  pcfg.next_worker_top_k = 2;
  FutureStatePredictor predictor(pcfg, &st);

  ArrivalModel arrivals;
  // Two rounds so returning workers exist and p_new < 1.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 3; ++i) {
      arrivals.RecordArrival(i, 8000 + round * 500 + i * 100);
    }
  }
  FakeEnv env(&fx.fb, {0.2, 0.5, 0.8, 0.5});
  auto spec = predictor.PredictNextWorker(fx.obs, arrivals, env);
  // 2 worker branches + 1 new-worker branch (p_new > 0 early on).
  EXPECT_GE(spec.branches.size(), 2u);
  EXPECT_LE(spec.branches.size(), 3u);
  EXPECT_LE(spec.TotalMass(), 1.0 + 1e-5);
  EXPECT_GT(spec.TotalMass(), 0.5);
}

TEST(PredictorTest, EmptyPoolYieldsEmptySpec) {
  Fixture fx(0, 0, {});
  StateTransformer st(StateConfig{}, fx.fb.worker_dim(), fx.fb.task_dim());
  FutureStatePredictor predictor(PredictorConfig{}, &st);
  ArrivalModel arrivals;
  arrivals.RecordArrival(0, 0);
  std::vector<float> fw(fx.fb.worker_dim(), 0.0f);
  auto spec = predictor.PredictSameWorker(fx.obs, fw, 0.5, arrivals);
  EXPECT_TRUE(spec.empty());
}

}  // namespace
}  // namespace crowdrl
