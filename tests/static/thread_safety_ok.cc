// Thread-safety analysis smoke check, positive half: idiomatic use of the
// annotated primitives must compile clean under
// `clang -fsyntax-only -Wthread-safety -Werror`. Compiled (never run) by
// the `static/thread_safety_ok` ctest entry on clang builds; its twin
// thread_safety_violation.cc asserts the analysis actually rejects a
// GUARDED_BY violation, so together they prove the gate is live.

#include <chrono>

#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    crowdrl::MutexLock lk(mu_);
    ++value_;
    cv_.NotifyOne();
  }

  int WaitForPositive() {
    crowdrl::MutexLock lk(mu_);
    while (value_ <= 0) cv_.Wait(mu_, lk);
    return value_;
  }

  int ReadLocked() CROWDRL_REQUIRES(mu_) { return value_; }

  int ReadViaRequires() {
    crowdrl::MutexLock lk(mu_);
    return ReadLocked();
  }

  int ReadShared() {
    crowdrl::ReaderMutexLock lk(shared_mu_);
    return shared_value_;
  }

  void WriteShared(int v) {
    crowdrl::WriterMutexLock lk(shared_mu_);
    shared_value_ = v;
  }

  void HandOverHand() {
    crowdrl::MutexLock lk(mu_);
    ++value_;
    lk.Unlock();
    // Not holding mu_ here: touching value_ would be a violation.
    lk.Lock();
    ++value_;
  }

 private:
  crowdrl::Mutex mu_;
  crowdrl::CondVar cv_;
  int value_ CROWDRL_GUARDED_BY(mu_) = 0;
  crowdrl::SharedMutex shared_mu_;
  int shared_value_ CROWDRL_GUARDED_BY(shared_mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  c.WriteShared(c.ReadViaRequires());
  c.HandOverHand();
  return c.WaitForPositive() + c.ReadShared() > 0 ? 0 : 1;
}
