// Thread-safety analysis smoke check, negative half: this file contains a
// deliberate GUARDED_BY violation and MUST FAIL to compile under
// `clang -fsyntax-only -Wthread-safety -Werror` (the ctest entry is
// registered WILL_FAIL). If it ever compiles, the analysis gate has gone
// dead — e.g. the annotation macros stopped expanding — and the "proof"
// the thread-safety build provides is vacuous.

#include "common/mutex.h"

namespace {

class Broken {
 public:
  // Violation: writes the guarded member without holding mu_.
  void UnlockedWrite() { ++value_; }

 private:
  crowdrl::Mutex mu_;
  int value_ CROWDRL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Broken b;
  b.UnlockedWrite();
  return 0;
}
